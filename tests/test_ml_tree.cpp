// Tests for the C4.5/C5.0-style decision tree: entropy math, pessimistic
// error bounds, induction on separable data, pruning, weighting, and
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv::ml;

Dataset two_class(const std::vector<std::string>& attrs = {"x", "y"}) {
  return Dataset(attrs, {"neg", "pos"});
}

TEST(Entropy, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{4.0, 0.0}), 0.0);
  EXPECT_NEAR(entropy(std::vector<double>{1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
  EXPECT_NEAR(entropy(std::vector<double>{3.0, 1.0}),
              -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25)), 1e-12);
}

TEST(Entropy, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(PessimisticErrors, ZeroErrorStillPenalized) {
  const double add = pessimistic_errors(10.0, 0.0, 0.25);
  EXPECT_GT(add, 0.0);
  EXPECT_LT(add, 10.0);
}

TEST(PessimisticErrors, ShrinksWithMoreData) {
  // Same observed error *rate*, more data -> tighter bound.
  const double small = pessimistic_errors(10.0, 1.0, 0.25) / 10.0;
  const double large = pessimistic_errors(1000.0, 100.0, 0.25) / 1000.0;
  EXPECT_GT(small, large);
}

TEST(PessimisticErrors, GrowsWithErrors) {
  const double e1 = pessimistic_errors(100.0, 5.0, 0.25);
  const double e2 = pessimistic_errors(100.0, 20.0, 0.25);
  // The *total* pessimistic estimate (observed + slack) must grow.
  EXPECT_GT(20.0 + e2, 5.0 + e1);
}

TEST(PessimisticErrors, ConfidenceOneDisables) {
  EXPECT_DOUBLE_EQ(pessimistic_errors(50.0, 5.0, 1.0), 0.0);
}

TEST(Dataset, AddValidatesShapes) {
  auto data = two_class();
  EXPECT_THROW(data.add({1.0}, 0), std::invalid_argument);       // bad width
  EXPECT_THROW(data.add({1.0, 2.0}, 2), std::invalid_argument);  // bad label
  data.add({1.0, 2.0}, 1);
  EXPECT_EQ(data.size(), 1u);
}

TEST(Dataset, SplitPartitionsAllInstances) {
  auto data = two_class();
  for (int i = 0; i < 100; ++i)
    data.add({static_cast<double>(i), 0.0}, i % 2);
  const auto [train, test] = data.split(0.75, 42);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
}

TEST(Dataset, SplitIsDeterministic) {
  auto data = two_class();
  for (int i = 0; i < 50; ++i) data.add({static_cast<double>(i), 1.0}, i % 2);
  const auto [a_train, a_test] = data.split(0.5, 9);
  const auto [b_train, b_test] = data.split(0.5, 9);
  ASSERT_EQ(a_train.size(), b_train.size());
  for (std::size_t i = 0; i < a_train.size(); ++i) {
    EXPECT_EQ(a_train.features(i), b_train.features(i));
    EXPECT_EQ(a_train.label(i), b_train.label(i));
  }
}

TEST(Dataset, ClassHistogram) {
  auto data = two_class();
  data.add({0, 0}, 0);
  data.add({1, 0}, 1);
  data.add({2, 0}, 1);
  EXPECT_EQ(data.class_histogram(), (std::vector<std::size_t>{1, 2}));
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  auto data = two_class();
  for (int i = 0; i < 50; ++i) {
    data.add({static_cast<double>(i), 0.5}, i < 25 ? 0 : 1);
  }
  DecisionTree tree;
  tree.train(data);
  EXPECT_EQ(tree.error_rate(data), 0.0);
  // One split suffices: root + 2 leaves reachable.
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_EQ(tree.depth(), 2);
  // Threshold near the class boundary.
  EXPECT_EQ(tree.nodes()[0].attr, 0);
  EXPECT_NEAR(tree.nodes()[0].threshold, 24.5, 0.51);
}

TEST(DecisionTree, IgnoresUselessAttribute) {
  auto data = two_class();
  spmv::util::Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const double signal = rng.uniform();
    data.add({rng.uniform(), signal}, signal > 0.5 ? 1 : 0);
  }
  DecisionTree tree;
  tree.train(data);
  EXPECT_EQ(tree.nodes()[0].attr, 1);  // splits on the signal, not noise
  EXPECT_LT(tree.error_rate(data), 0.02);
}

TEST(DecisionTree, LearnsNestedConceptWithDepth) {
  // label = (x > 0.3) AND (y > 0.6): needs two split levels; verifies
  // recursion past the first split. (Perfectly balanced XOR is a known
  // blind spot of greedy gain-based induction and is not required here.)
  auto data = two_class();
  spmv::util::Xoshiro256 rng(6);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    data.add({x, y}, (x > 0.3 && y > 0.6) ? 1 : 0);
  }
  DecisionTree tree;
  tree.train(data);
  EXPECT_LT(tree.error_rate(data), 0.02);
  EXPECT_GE(tree.depth(), 3);
}

TEST(DecisionTree, MulticlassBands) {
  Dataset data({"v"}, {"a", "b", "c", "d"});
  for (int i = 0; i < 400; ++i) {
    const double v = static_cast<double>(i % 100);
    data.add({v}, static_cast<int>(v / 25.0));
  }
  DecisionTree tree;
  tree.train(data);
  EXPECT_EQ(tree.error_rate(data), 0.0);
  EXPECT_EQ(tree.predict(std::vector<double>{10.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{30.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{60.0}), 2);
  EXPECT_EQ(tree.predict(std::vector<double>{90.0}), 3);
}

TEST(DecisionTree, PruningShrinksNoisyTree) {
  auto data = two_class();
  spmv::util::Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    // 15% label noise around a simple threshold concept.
    int label = x > 0.5 ? 1 : 0;
    if (rng.uniform() < 0.15) label = 1 - label;
    data.add({x, rng.uniform()}, label);
  }
  // Disable the MDL induction penalty so the raw tree overfits the noise,
  // then check pessimistic-error pruning cuts it back.
  DecisionTree pruned, unpruned;
  TreeParams grow;
  grow.mdl_penalty = false;
  grow.pruning_cf = 1.0;
  unpruned.train(data, grow);
  TreeParams with_pruning = grow;
  with_pruning.pruning_cf = 0.25;
  pruned.train(data, with_pruning);
  EXPECT_LT(pruned.leaf_count(), unpruned.leaf_count());
  EXPECT_GT(unpruned.leaf_count(), 10u);  // it really did overfit
}

TEST(DecisionTree, RespectsMaxDepth) {
  auto data = two_class();
  spmv::util::Xoshiro256 rng(8);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    data.add({x, y}, (static_cast<int>(x * 8) + static_cast<int>(y * 8)) % 2);
  }
  DecisionTree tree;
  TreeParams p;
  p.max_depth = 2;
  p.pruning_cf = 1.0;
  tree.train(data, p);
  EXPECT_LE(tree.depth(), 3);  // root level 1 + 2 split levels
}

TEST(DecisionTree, WeightsShiftTheMajority) {
  // Identical feature, conflicting labels: weights decide the leaf class.
  auto data = two_class();
  data.add({1.0, 0.0}, 0);
  data.add({1.0, 0.0}, 1);
  const std::vector<double> favor_pos = {0.1, 5.0};
  DecisionTree tree;
  tree.train(data, {}, favor_pos);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 0.0}), 1);
  const std::vector<double> favor_neg = {5.0, 0.1};
  tree.train(data, {}, favor_neg);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 0.0}), 0);
}

TEST(DecisionTree, SaveLoadRoundTrip) {
  auto data = two_class();
  spmv::util::Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    data.add({x, y}, x + y > 1.0 ? 1 : 0);
  }
  DecisionTree tree;
  tree.train(data);
  std::stringstream ss;
  tree.save(ss);
  const DecisionTree loaded = DecisionTree::load(ss);
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(loaded.predict(data.features(i)), tree.predict(data.features(i)));
  }
}

TEST(DecisionTree, LoadRejectsGarbage) {
  std::stringstream ss("not a tree");
  EXPECT_THROW(DecisionTree::load(ss), std::runtime_error);
}

TEST(DecisionTree, ToStringMentionsAttributes) {
  auto data = two_class({"alpha", "beta"});
  for (int i = 0; i < 40; ++i)
    data.add({static_cast<double>(i), 0.0}, i < 20 ? 0 : 1);
  DecisionTree tree;
  tree.train(data);
  const std::string text = tree.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("pos"), std::string::npos);
}

TEST(DecisionTree, UntrainedThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(DecisionTree, EmptyDatasetThrows) {
  Dataset data({"x"}, {"a", "b"});
  DecisionTree tree;
  EXPECT_THROW(tree.train(data), std::invalid_argument);
}

TEST(DecisionTree, GeneralizesOnHoldout) {
  auto data = two_class();
  spmv::util::Xoshiro256 rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    data.add({x, y}, 2.0 * x + y > 1.4 ? 1 : 0);
  }
  const auto [train, test] = data.split(0.75, 3);
  DecisionTree tree;
  tree.train(train);
  EXPECT_LT(tree.error_rate(test), 0.10);
}

}  // namespace

// Tests for the core framework: candidate pools, plans, the exhaustive
// oracle, predictors, and AutoSpmv execution correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/auto_spmv.hpp"
#include "core/candidates.hpp"
#include "core/exhaustive.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "core/tuner.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using namespace spmv::core;

std::vector<float> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_matches_exact(const CsrMatrix<float>& a,
                          std::span<const float> x,
                          std::span<const float> y) {
  const auto exact = kernels::spmv_exact(a, x);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i],
                2e-4 * (std::abs(exact[i]) + 1.0))
        << "row " << i;
  }
}

TEST(Candidates, DefaultPoolsMatchPaper) {
  const auto pools = default_pools();
  EXPECT_EQ(pools.units.size(), 16u);
  EXPECT_EQ(pools.kernel_pool.size(), 9u);
  EXPECT_FALSE(pools.include_single_bin);
}

TEST(Candidates, IndexLookups) {
  const auto pools = default_pools();
  EXPECT_EQ(pools.unit_index(10), 0);
  EXPECT_EQ(pools.unit_index(1000000), 15);
  EXPECT_EQ(pools.unit_index(37), -1);
  EXPECT_EQ(pools.kernel_index(kernels::KernelId::Serial), 0);
  EXPECT_EQ(pools.kernel_index(kernels::KernelId::Vector), 8);
}

TEST(Candidates, ClassNames) {
  auto pools = small_pools();
  pools.include_single_bin = true;
  const auto unit_names = pools.unit_class_names();
  ASSERT_EQ(unit_names.size(), pools.units.size() + 1);
  EXPECT_EQ(unit_names.front(), "U10");
  EXPECT_EQ(unit_names.back(), "single-bin");
  const auto kernel_names = pools.kernel_class_names();
  EXPECT_EQ(kernel_names.front(), "serial");
}

TEST(Plan, KernelForAndToString) {
  Plan plan;
  plan.unit = 100;
  plan.bin_kernels = {{0, kernels::KernelId::Serial},
                      {7, kernels::KernelId::Vector}};
  EXPECT_EQ(plan.kernel_for(7), kernels::KernelId::Vector);
  EXPECT_THROW(plan.kernel_for(3), std::out_of_range);
  const auto text = plan.to_string();
  EXPECT_NE(text.find("U=100"), std::string::npos);
  EXPECT_NE(text.find("bin7:vector"), std::string::npos);
}

TEST(ExecutePlan, UnitMismatchThrows) {
  const auto a = gen::diagonal<float>(100);
  const auto x = random_vector(100, 1);
  std::vector<float> y(100);
  Plan plan;
  plan.unit = 10;
  const auto bins = binning::bin_matrix(a, 20);
  EXPECT_THROW(execute_plan(clsim::default_engine(), a,
                            std::span<const float>(x), std::span<float>(y),
                            bins, plan),
               std::invalid_argument);
}

TEST(Exhaustive, FindsValidPlanAndExecutesCorrectly) {
  const auto a =
      gen::mixed_regime<float>(3000, 3000, 0.5, 0.3, 3, 40, 300, 32, 9);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 2);

  auto pools = small_pools();
  ExhaustiveOptions opts;
  opts.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.05};
  const auto tuned =
      exhaustive_tune(clsim::default_engine(), a, std::span<const float>(x),
                      pools, opts);

  EXPECT_GE(pools.unit_index(tuned.best_plan.unit), 0);
  EXPECT_FALSE(tuned.best_plan.bin_kernels.empty());
  EXPECT_GT(tuned.best_s, 0.0);
  EXPECT_EQ(tuned.per_unit.size(), pools.units.size());

  // The winning plan must still be a correct SpMV.
  const auto bins = bins_for_plan(a, tuned.best_plan);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  execute_plan(clsim::default_engine(), a, std::span<const float>(x),
               std::span<float>(y), bins, tuned.best_plan);
  expect_matches_exact(a, x, y);
}

TEST(Exhaustive, BestIsNoWorseThanAnyMeasuredUnit) {
  const auto a = gen::power_law<float>(2000, 2000, 2.0, 300, 10);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 3);
  ExhaustiveOptions opts;
  opts.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.05};
  const auto tuned = exhaustive_tune(
      clsim::default_engine(), a, std::span<const float>(x), small_pools(),
      opts);
  double best_total = std::numeric_limits<double>::infinity();
  for (const auto& ur : tuned.per_unit)
    best_total = std::min(best_total, ur.total_s);
  // The chosen plan is within the tie tolerance of the per-unit argmin
  // (ties break toward coarser granularity).
  bool found = false;
  for (const auto& ur : tuned.per_unit) {
    if (!ur.single_bin && ur.unit == tuned.best_plan.unit &&
        ur.total_s <= best_total * (1.0 + opts.tie_tolerance) + 1e-12) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Exhaustive, SingleBinIncludedWhenEnabled) {
  const auto a = gen::diagonal<float>(2000);
  const auto x = random_vector(2000, 4);
  auto pools = small_pools();
  pools.include_single_bin = true;
  ExhaustiveOptions opts;
  opts.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.02};
  const auto tuned = exhaustive_tune(
      clsim::default_engine(), a, std::span<const float>(x), pools, opts);
  EXPECT_EQ(tuned.per_unit.size(), pools.units.size() + 1);
  EXPECT_TRUE(tuned.per_unit.back().single_bin);
  ASSERT_EQ(tuned.per_unit.back().bin_kernels.size(), 1u);
  EXPECT_EQ(tuned.per_unit.back().bin_kernels[0].bin_id, 0);
}

TEST(Exhaustive, EmptyPoolThrows) {
  const auto a = gen::diagonal<float>(10);
  const auto x = random_vector(10, 5);
  CandidatePools empty;
  EXPECT_THROW(exhaustive_tune(clsim::default_engine(), a,
                               std::span<const float>(x), empty),
               std::invalid_argument);
}

TEST(Heuristic, UnitScalesWithMatrixSize) {
  HeuristicPredictor pred;
  RowStats small;
  small.rows = 1000;
  small.avg_nnz = 5;
  RowStats huge;
  huge.rows = 50'000'000;
  huge.avg_nnz = 5;
  const auto u_small = pred.predict_unit(small);
  const auto u_huge = pred.predict_unit(huge);
  EXPECT_FALSE(u_small.single_bin);
  EXPECT_LT(u_small.unit, u_huge.unit);
}

TEST(Heuristic, KernelWidthTracksBinId) {
  HeuristicPredictor pred;
  RowStats stats;
  stats.rows = 10000;
  stats.avg_nnz = 10.0;
  const auto short_kernel = pred.predict_kernel(stats, 100, 1);
  const auto long_kernel = pred.predict_kernel(stats, 100, 90);
  EXPECT_LT(kernels::lanes_per_row(short_kernel),
            kernels::lanes_per_row(long_kernel));
}

TEST(Heuristic, OverflowBinPrefersWideKernel) {
  HeuristicPredictor pred;
  RowStats stats;
  stats.rows = 1000;
  stats.avg_nnz = 800.0;  // very long rows
  const auto k = pred.predict_kernel(stats, 10, 99);
  EXPECT_GE(kernels::lanes_per_row(k), 128);
}

// Property: AutoSpmv with the heuristic predictor computes a correct SpMV
// on every matrix family.
class AutoSpmvCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(AutoSpmvCorrectness, MatchesReference) {
  CsrMatrix<float> a = [&] {
    switch (GetParam()) {
      case 0: return gen::diagonal<float>(3000);
      case 1: return gen::fixed_degree<float>(2500, 800, 4, 6);
      case 2: return gen::power_law<float>(2000, 2000, 2.0, 400, 7);
      case 3: return gen::cfd_longrow<float>(300, 200, 8);
      default:
        return gen::mixed_regime<float>(1500, 1500, 0.4, 0.4, 2, 30, 300, 16,
                                        9);
    }
  }();
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 10);
  HeuristicPredictor pred;
  const auto spmv = Tuner(a).predictor(pred).build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y));
  expect_matches_exact(a, x, y);

  // The plan covers every occupied bin.
  EXPECT_EQ(spmv.plan().bin_kernels.size(),
            spmv.bins().occupied_bins().size());
  EXPECT_EQ(spmv.stats().rows, a.rows());
}

INSTANTIATE_TEST_SUITE_P(Families, AutoSpmvCorrectness,
                         ::testing::Range(0, 5));

TEST(AutoSpmv, ExternalPlanConstructor) {
  const auto a = gen::banded<float>(2000, 4, 0.5, 11);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 12);
  Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Sub4});
  const auto spmv = Tuner(a).plan(plan).build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y));
  expect_matches_exact(a, x, y);
  EXPECT_EQ(spmv.plan().unit, 100);
}

TEST(AutoSpmv, RepeatedRunsAreStable) {
  const auto a = gen::power_law<float>(1000, 1000, 2.0, 200, 13);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 14);
  HeuristicPredictor pred;
  const auto spmv = Tuner(a).predictor(pred).build();
  std::vector<float> y1(static_cast<std::size_t>(a.rows()));
  std::vector<float> y2(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y1));
  spmv.run(x, std::span<float>(y2));
  EXPECT_EQ(y1, y2);
}

}  // namespace

// Persistence fuzzing: the plan store and plan (de)serializers face
// untrusted bytes — hand-edited artifacts, partial writes from a crash
// mid-rename, copy corruption. Contract under test: PlanStore::load()
// NEVER throws or crashes regardless of input (it falls back to an empty
// store with the reason counted in stats, and stays flushable), and
// core::plan_from_json fails only by throwing std::exception (no UB on
// huge/negative/non-integral numbers, no crash on type confusion).
//
// Randomized passes derive from SPMV_TEST_SEED (same replay protocol as
// test_differential); every assertion message carries the seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/plan_store.hpp"
#include "binning/binning.hpp"
#include "core/plan_io.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "kernels/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

std::uint64_t base_seed() {
  if (const char* s = std::getenv("SPMV_TEST_SEED"); s != nullptr && *s != '\0')
    return std::strtoull(s, nullptr, 10);
  return 0xF0221EDULL;
}

std::string seed_note(std::uint64_t base, std::uint64_t seed) {
  return " (seed " + std::to_string(seed) +
         ", replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A random but internally valid Plan, including tuned-U provenance.
core::Plan random_plan(util::Xoshiro256& rng) {
  core::Plan p;
  p.unit = static_cast<index_t>(1 + rng.bounded(1000000));
  p.single_bin = rng.uniform() < 0.25;
  p.revision = rng.bounded(1000);
  p.unit_tuned = rng.uniform() < 0.5;
  p.predicted_unit =
      rng.uniform() < 0.5 ? 0 : static_cast<index_t>(1 + rng.bounded(1000000));
  p.backend = static_cast<exec::BackendKind>(
      rng.bounded(static_cast<std::uint64_t>(exec::kBackendCount)));
  const auto& pool = kernels::all_kernels();
  const auto random_format = [&rng] {
    return static_cast<fmt::FormatKind>(
        rng.bounded(static_cast<std::uint64_t>(fmt::kFormatCount)));
  };
  if (p.single_bin) {
    p.bin_kernels.push_back(
        {0, pool[rng.bounded(pool.size())], random_format()});
  } else {
    int bin = 0;
    const int n = 1 + static_cast<int>(rng.bounded(8));
    for (int i = 0; i < n && bin < binning::kMaxBins; ++i) {
      p.bin_kernels.push_back(
          {bin, pool[rng.bounded(pool.size())], random_format()});
      bin += 1 + static_cast<int>(rng.bounded(12));
    }
  }
  return p;
}

void expect_plans_equal(const core::Plan& a, const core::Plan& b,
                        const std::string& note) {
  EXPECT_EQ(a.unit, b.unit) << note;
  EXPECT_EQ(a.single_bin, b.single_bin) << note;
  EXPECT_EQ(a.revision, b.revision) << note;
  EXPECT_EQ(a.unit_tuned, b.unit_tuned) << note;
  EXPECT_EQ(a.predicted_unit, b.predicted_unit) << note;
  EXPECT_EQ(a.backend, b.backend) << note;
  ASSERT_EQ(a.bin_kernels.size(), b.bin_kernels.size()) << note;
  for (std::size_t i = 0; i < a.bin_kernels.size(); ++i) {
    EXPECT_EQ(a.bin_kernels[i].bin_id, b.bin_kernels[i].bin_id) << note;
    EXPECT_EQ(a.bin_kernels[i].kernel, b.bin_kernels[i].kernel) << note;
    EXPECT_EQ(a.bin_kernels[i].format, b.bin_kernels[i].format) << note;
  }
}

serve::Fingerprint random_fingerprint(util::Xoshiro256& rng) {
  serve::Fingerprint f;
  f.rows = static_cast<std::int64_t>(1 + rng.bounded(1000000));
  f.cols = static_cast<std::int64_t>(1 + rng.bounded(1000000));
  f.nnz = static_cast<std::int64_t>(rng.bounded(10000000));
  f.row_hash = rng.next();
  return f;
}

// ---- plan_io round-trip + fuzz ------------------------------------------

TEST(PlanIoFuzz, RoundTripRandomPlansWithProvenance) {
  const std::uint64_t base = base_seed();
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t seed =
        util::SplitMix64(base + static_cast<std::uint64_t>(i)).next();
    util::Xoshiro256 rng(seed);
    const core::Plan p = random_plan(rng);
    // Through the text layer, not just the Json tree: the store writes text.
    const auto back = core::plan_from_json(
        prof::Json::parse(core::plan_to_json(p).dump(2)));
    expect_plans_equal(p, back, "plan " + std::to_string(i) +
                                    seed_note(base, seed));
  }
}

TEST(PlanIoFuzz, MutatedPlanJsonThrowsOrParsesButNeverCrashes) {
  const std::uint64_t base = base_seed();
  util::Xoshiro256 rng(util::SplitMix64(base ^ 0x9a7).next());
  const std::string text = core::plan_to_json(random_plan(rng)).dump(2);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = text;
    // 1-4 random byte edits: flip, overwrite with a random byte, or delete.
    const int edits = 1 + static_cast<int>(rng.bounded(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const auto pos = rng.bounded(mutated.size());
      switch (rng.bounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(mutated[pos] ^
                                           (1 << rng.bounded(8)));
          break;
        case 1:
          mutated[pos] = static_cast<char>(rng.bounded(256));
          break;
        default:
          mutated.erase(pos, 1);
          break;
      }
    }
    try {
      (void)core::plan_from_json(prof::Json::parse(mutated));
    } catch (const std::exception&) {
      // Throwing is the allowed failure mode; crashing/UB is not.
    }
  }
}

TEST(PlanIoFuzz, TypeConfusedPlanFieldsThrowCleanly) {
  util::Xoshiro256 rng(7);
  const core::Plan p = random_plan(rng);
  // Each mutation swaps one field for a wrong-typed or out-of-range value;
  // all must throw std::exception (never crash, never return garbage).
  const std::vector<std::pair<const char*, prof::Json>> bad = {
      {"unit", prof::Json("ten")},
      {"unit", prof::Json(0)},
      {"unit", prof::Json(1e300)},
      {"unit", prof::Json(3.5)},
      {"revision", prof::Json(-2)},
      {"single_bin", prof::Json("yes")},
      {"unit_tuned", prof::Json(1.0)},
      {"predicted_unit", prof::Json(-1e20)},
      {"bins", prof::Json("not-an-array")},
      // Backend-field type confusion: wrong JSON type, and a well-typed
      // string that names no backend. Both must surface as the same
      // runtime_error family every other malformed field raises.
      {"backend", prof::Json("turbo")},
      {"backend", prof::Json(1)},
      {"backend", prof::Json(true)},
      {"backend", prof::Json::array()},
  };
  for (const auto& [key, value] : bad) {
    prof::Json j = core::plan_to_json(p);
    j.set(key, value);
    EXPECT_THROW((void)core::plan_from_json(j), std::exception)
        << "field " << key << " = " << value.dump(0);
  }
}

TEST(PlanIoFuzz, UnknownOrGarbageFormatNamesThrowCleanly) {
  const std::uint64_t base = base_seed();
  util::Xoshiro256 rng(util::SplitMix64(base ^ 0xF02).next());
  const core::Plan p = random_plan(rng);
  // Deterministic near-misses plus random byte soup: every name the format
  // registry does not know must surface as the counted-skip runtime_error
  // family — never crash, never silently load as some format.
  std::vector<std::string> names = {"",     "ELL",  "csr ", "ell2",
                                    "hyb",  "bsr",  "dcsr\n", "\xff\xfe"};
  for (int i = 0; i < 50; ++i) {
    std::string s;
    const auto len = 1 + rng.bounded(12);
    for (std::uint64_t c = 0; c < len; ++c)
      s.push_back(static_cast<char>(rng.bounded(256)));
    names.push_back(std::move(s));
  }
  for (const auto& name : names) {
    fmt::FormatKind k;
    if (fmt::try_format_from_name(name, &k))
      continue;  // the soup hit a real name; round-trip tests cover those
    prof::Json j = core::plan_to_json(p);
    prof::Json bins = prof::Json::array();
    bool first = true;
    for (const prof::Json& b : j.at("bins").items()) {
      prof::Json copy = b;
      if (first) {
        copy.set("format", prof::Json(name));
        first = false;
      }
      bins.push_back(std::move(copy));
    }
    j.set("bins", std::move(bins));
    EXPECT_THROW((void)core::plan_from_json(j), std::exception)
        << "format name of " << name.size() << " bytes silently loaded";
  }
  // Wrong-typed format values fail the same way.
  for (const prof::Json& bad :
       {prof::Json(3), prof::Json(true), prof::Json::array()}) {
    prof::Json j = core::plan_to_json(p);
    prof::Json bins = prof::Json::array();
    prof::Json bin = j.at("bins").at(std::size_t{0});
    bin.set("format", bad);
    bins.push_back(std::move(bin));
    if (!p.single_bin) {
      bool first = true;
      for (const prof::Json& b : j.at("bins").items()) {
        if (first) {
          first = false;
          continue;
        }
        bins.push_back(b);
      }
    }
    j.set("bins", std::move(bins));
    EXPECT_THROW((void)core::plan_from_json(j), std::exception)
        << "format = " << bad.dump(0);
  }
}

// ---- PlanStore fuzz ------------------------------------------------------

/// A valid one-entry store file at `path`, returning the entry written.
std::pair<serve::Fingerprint, adapt::StoredPlan> write_valid_store(
    const std::string& path, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  adapt::PlanStore store(path, "dev-a", "model-a");
  adapt::StoredPlan sp;
  sp.plan = random_plan(rng);
  sp.gflops = rng.uniform(0.1, 10.0);
  sp.trials = rng.bounded(500);
  const auto key = random_fingerprint(rng);
  store.put(key, sp);
  store.flush();
  return {key, sp};
}

TEST(PlanStoreFuzz, StoreRoundTripPreservesPlanAndProvenance) {
  const std::uint64_t base = base_seed();
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t seed =
        util::SplitMix64(base + 5000 + static_cast<std::uint64_t>(i)).next();
    ScopedFile f("fuzz_store_roundtrip.tmp.json");
    const auto [key, sp] = write_valid_store(f.path, seed);
    adapt::PlanStore reread(f.path, "dev-a", "model-a");
    const auto stats = reread.load();
    const std::string note = seed_note(base, seed);
    ASSERT_EQ(stats.loaded, 1u) << note;
    const auto got = reread.lookup(key);
    ASSERT_TRUE(got.has_value()) << note;
    expect_plans_equal(sp.plan, got->plan, note);
    EXPECT_DOUBLE_EQ(sp.gflops, got->gflops) << note;
    EXPECT_EQ(sp.trials, got->trials) << note;
  }
}

TEST(PlanStoreFuzz, CorruptedStoreFilesNeverThrowAndStayFlushable) {
  const std::uint64_t base = base_seed();
  ScopedFile f("fuzz_store_corrupt.tmp.json");
  const std::uint64_t seed = util::SplitMix64(base ^ 0xC0221).next();
  write_valid_store(f.path, seed);
  const std::string valid = read_text(f.path);
  ASSERT_FALSE(valid.empty());

  util::Xoshiro256 rng(seed ^ 1);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    if (i % 3 == 0) {
      // Truncation: a crash mid-write leaves a prefix.
      mutated.resize(rng.bounded(mutated.size()));
    } else {
      const int edits = 1 + static_cast<int>(rng.bounded(6));
      for (int e = 0; e < edits; ++e) {
        const auto pos = rng.bounded(mutated.size());
        mutated[pos] = static_cast<char>(rng.bounded(256));
      }
    }
    write_text(f.path, mutated);
    adapt::PlanStore store(f.path, "dev-a", "model-a");
    ASSERT_NO_THROW((void)store.load())
        << "mutation " << i << seed_note(base, seed);
    // Whatever survived, the store must still be writable over the damage.
    ASSERT_NO_THROW(store.flush())
        << "mutation " << i << seed_note(base, seed);
  }
}

TEST(PlanStoreFuzz, TypeConfusedStoreFieldsAreSkippedAndCounted) {
  ScopedFile f("fuzz_store_types.tmp.json");
  write_valid_store(f.path, 42);
  const prof::Json valid = prof::Json::parse(read_text(f.path));

  struct Case {
    const char* name;
    const char* field;  // top-level or entry-level field to corrupt
    prof::Json value;
    bool whole_file;  // corruption rejects the whole file vs one entry
  };
  const std::vector<Case> cases = {
      {"schema as string", "schema", prof::Json("v1"), true},
      {"schema wrong version", "schema", prof::Json(999), true},
      {"entries as object", "entries", prof::Json::object(), true},
      {"device as number", "device", prof::Json(3.0), false},
      {"plan as string", "plan", prof::Json("fast"), false},
      {"fingerprint as array", "fingerprint", prof::Json::array(), false},
      {"trials as string", "trials", prof::Json("many"), false},
      {"trials negative", "trials", prof::Json(-7), false},
      {"trials huge", "trials", prof::Json(1e300), false},
      {"saved_unix_ms non-integral", "saved_unix_ms", prof::Json(1.5), false},
      {"last_used_unix_ms huge", "last_used_unix_ms", prof::Json(1e18),
       false},
  };
  for (const auto& c : cases) {
    prof::Json doc = valid;
    if (c.whole_file) {
      doc.set(c.field, c.value);
    } else {
      prof::Json entry = doc.at("entries").at(std::size_t{0});
      entry.set(c.field, c.value);
      prof::Json entries = prof::Json::array();
      entries.push_back(std::move(entry));
      doc.set("entries", std::move(entries));
    }
    write_text(f.path, doc.dump(2));
    adapt::PlanStore store(f.path, "dev-a", "model-a");
    adapt::PlanStoreStats stats;
    ASSERT_NO_THROW(stats = store.load()) << c.name;
    EXPECT_EQ(stats.loaded, 0u) << c.name;
    EXPECT_GT(stats.skipped_schema + stats.skipped_malformed, 0u) << c.name;
    EXPECT_EQ(store.size(), 0u) << c.name;
  }
}

TEST(PlanStoreFuzz, UnknownFormatNameIsCountedSkipAndStaysFlushable) {
  // A store entry whose plan names a format this build does not know (a
  // newer writer, or plain corruption) is a per-entry counted skip — the
  // same contract as an unknown kernel or backend name.
  ScopedFile f("fuzz_store_badformat.tmp.json");
  write_valid_store(f.path, 314);
  prof::Json doc = prof::Json::parse(read_text(f.path));
  prof::Json entry = doc.at("entries").at(std::size_t{0});
  prof::Json plan = entry.at("plan");
  prof::Json bins = prof::Json::array();
  bool first = true;
  for (const prof::Json& b : plan.at("bins").items()) {
    prof::Json copy = b;
    if (first) {
      copy.set("format", prof::Json("zebra-major"));
      first = false;
    }
    bins.push_back(std::move(copy));
  }
  plan.set("bins", std::move(bins));
  entry.set("plan", std::move(plan));
  prof::Json entries = prof::Json::array();
  entries.push_back(std::move(entry));
  doc.set("entries", std::move(entries));
  write_text(f.path, doc.dump(2));

  adapt::PlanStore store(f.path, "dev-a", "model-a");
  adapt::PlanStoreStats stats;
  ASSERT_NO_THROW(stats = store.load());
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped_malformed, 1u);
  EXPECT_EQ(store.size(), 0u);
  ASSERT_NO_THROW(store.flush());
}

TEST(PlanStoreFuzz, V2SchemaWithoutFormatsLoadsAsCsr) {
  // Pre-format artifacts (schema 2, bins with no format key) must keep
  // loading: the schema gate accepts the supported range and every bin
  // defaults to the CSR physical layout.
  ScopedFile f("fuzz_store_v2.tmp.json");
  const auto key = write_valid_store(f.path, 456).first;
  prof::Json doc = prof::Json::parse(read_text(f.path));
  doc.set("schema", prof::Json(2));
  prof::Json entry = doc.at("entries").at(std::size_t{0});
  prof::Json plan = entry.at("plan");
  prof::Json bins = prof::Json::array();
  for (const prof::Json& b : plan.at("bins").items()) {
    prof::Json v2bin = prof::Json::object();
    v2bin.set("bin", b.at("bin"));
    v2bin.set("kernel", b.at("kernel"));
    bins.push_back(std::move(v2bin));
  }
  plan.set("bins", std::move(bins));
  entry.set("plan", std::move(plan));
  prof::Json entries = prof::Json::array();
  entries.push_back(std::move(entry));
  doc.set("entries", std::move(entries));
  write_text(f.path, doc.dump(2));

  adapt::PlanStore store(f.path, "dev-a", "model-a");
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 1u);
  const auto got = store.lookup(key);
  ASSERT_TRUE(got.has_value());
  for (const auto& bp : got->plan.bin_kernels)
    EXPECT_EQ(bp.format, fmt::FormatKind::Csr);
}

TEST(PlanStoreFuzz, V1SchemaWithoutBackendLoadsAsClsim) {
  // Pre-backend artifacts (schema 1, plans with no backend field) must
  // keep loading: the schema gate accepts the supported range and the
  // missing field defaults to the clsim backend.
  ScopedFile f("fuzz_store_v1.tmp.json");
  const auto key = write_valid_store(f.path, 123).first;
  prof::Json doc = prof::Json::parse(read_text(f.path));
  doc.set("schema", prof::Json(1));
  prof::Json entry = doc.at("entries").at(std::size_t{0});
  const prof::Json& plan = entry.at("plan");
  prof::Json v1plan = prof::Json::object();
  for (const char* k : {"unit", "single_bin", "revision", "unit_tuned",
                        "predicted_unit", "bins"})
    v1plan.set(k, plan.at(k));
  entry.set("plan", std::move(v1plan));
  prof::Json entries = prof::Json::array();
  entries.push_back(std::move(entry));
  doc.set("entries", std::move(entries));
  write_text(f.path, doc.dump(2));

  adapt::PlanStore store(f.path, "dev-a", "model-a");
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 1u);
  const auto got = store.lookup(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->plan.backend, exec::BackendKind::Clsim);
}

TEST(PlanStoreFuzz, ForeignEntriesSurviveLoadFlushOfDamagedSiblings) {
  // One good foreign entry + one malformed own entry: the malformed one is
  // skipped, the foreign one must still round-trip through flush().
  ScopedFile f("fuzz_store_foreign.tmp.json");
  write_valid_store(f.path, 77);
  prof::Json doc = prof::Json::parse(read_text(f.path));
  prof::Json foreign = doc.at("entries").at(std::size_t{0});
  foreign.set("device", prof::Json("dev-other"));
  prof::Json broken = doc.at("entries").at(std::size_t{0});
  broken.set("plan", prof::Json("oops"));
  prof::Json entries = prof::Json::array();
  entries.push_back(std::move(foreign));
  entries.push_back(std::move(broken));
  doc.set("entries", std::move(entries));
  write_text(f.path, doc.dump(2));

  adapt::PlanStore store(f.path, "dev-a", "model-a");
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped_device, 1u);
  EXPECT_EQ(stats.skipped_malformed, 1u);
  store.flush();

  adapt::PlanStore other(f.path, "dev-other", "model-a");
  const auto ostats = other.load();
  EXPECT_EQ(ostats.loaded, 1u);
}

}  // namespace

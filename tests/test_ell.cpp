// Tests for the ELLPACK format: conversion, padding accounting, SpMV
// correctness, and the expansion guard (the paper's argument against
// format switching on skewed matrices).
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "sparse/convert.hpp"
#include "sparse/ell.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

TEST(Ell, ConstructorValidatesShape) {
  EXPECT_THROW(EllMatrix<double>(2, 2, 3, {0, 1}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Ell, PaddingRatioUniformIsOne) {
  const auto a = gen::fixed_degree<double>(200, 100, 5, 1);
  EXPECT_DOUBLE_EQ(ell_padding_ratio(a), 1.0);
}

TEST(Ell, PaddingRatioSkewedExplodes) {
  // 99 rows with 1 nnz + 1 row with 1000 nnz: ratio = 100*1000/1099 ~ 91.
  CooMatrix<double> coo(100, 1000);
  for (index_t r = 0; r < 99; ++r) coo.add(r, r % 1000, 1.0);
  for (index_t c = 0; c < 1000; ++c) coo.add(99, c, 1.0);
  const auto a = coo_to_csr(std::move(coo));
  EXPECT_GT(ell_padding_ratio(a), 50.0);
  EXPECT_THROW(csr_to_ell(a), std::length_error);  // default 16x guard
}

TEST(Ell, EmptyMatrixRatioZero) {
  CsrMatrix<double> empty;
  EXPECT_DOUBLE_EQ(ell_padding_ratio(empty), 0.0);
}

TEST(Ell, ConversionLayoutIsColumnMajor) {
  // 2x3: row0 = [a@0, b@2], row1 = [c@1].
  CooMatrix<double> coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 2, 2.0);
  coo.add(1, 1, 3.0);
  const auto ell = csr_to_ell(coo_to_csr(std::move(coo)));
  EXPECT_EQ(ell.width(), 2);
  ASSERT_EQ(ell.stored(), 4u);
  // Column-major: slot k*rows + r.
  EXPECT_EQ(ell.col_idx()[0], 0);   // (r0, k0)
  EXPECT_EQ(ell.col_idx()[1], 1);   // (r1, k0)
  EXPECT_EQ(ell.col_idx()[2], 2);   // (r0, k1)
  EXPECT_EQ(ell.col_idx()[3], -1);  // (r1, k1): padding
  EXPECT_DOUBLE_EQ(ell.vals()[2], 2.0);
}

class EllSpmv : public ::testing::TestWithParam<int> {};

TEST_P(EllSpmv, MatchesCsrReference) {
  CsrMatrix<double> a = [&] {
    switch (GetParam()) {
      case 0: return gen::diagonal<double>(500);
      case 1: return gen::fixed_degree<double>(600, 300, 4, 2);
      case 2: return gen::banded<double>(400, 5, 0.5, 3);
      default:
        return gen::random_uniform<double>(500, 500, 10.0, 0.3, 2, 30, 4);
    }
  }();
  util::Xoshiro256 rng(9);
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  const auto ell = csr_to_ell(a);
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  spmv_ell(ell, std::span<const double>(x), std::span<double>(y));
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Matrices, EllSpmv, ::testing::Range(0, 4));

TEST(Ell, SpmvShapeChecks) {
  const auto ell = csr_to_ell(gen::diagonal<double>(10));
  std::vector<double> x(5), y(10);
  EXPECT_THROW(spmv_ell(ell, std::span<const double>(x), std::span<double>(y)),
               std::invalid_argument);
}

TEST(Ell, BytesAccountPadding) {
  const auto a = gen::fixed_degree<double>(100, 100, 4, 7);
  const auto ell = csr_to_ell(a);
  EXPECT_EQ(ell.bytes(), 400u * (sizeof(index_t) + sizeof(double)));
}

}  // namespace

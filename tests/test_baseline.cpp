// Tests for the baselines: CSR-Adaptive (row blocks + stream/vector paths)
// and merge-based SpMV (merge-path partitioning).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baseline/csr_adaptive.hpp"
#include "baseline/merge_spmv.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

CsrMatrix<double> make_matrix(const std::string& name) {
  if (name == "diag") return gen::diagonal<double>(1000);
  if (name == "short") return gen::fixed_degree<double>(1200, 400, 3, 7);
  if (name == "power_law")
    return gen::power_law<double>(900, 900, 2.0, 600, 8);
  if (name == "long") return gen::cfd_longrow<double>(120, 300, 9);
  if (name == "mixed")
    return gen::mixed_regime<double>(700, 700, 0.4, 0.4, 2, 40, 400, 16, 10);
  if (name == "oversized_rows") {
    // Rows longer than the 1024-element stream buffer force CSR-Vector.
    CooMatrix<double> coo(5, 4000);
    for (index_t c = 0; c < 3000; ++c) coo.add(0, c, 0.5);
    for (index_t c = 0; c < 2; ++c) coo.add(1, c, 1.0);
    for (index_t c = 0; c < 2000; ++c) coo.add(3, c, 0.25);
    return coo_to_csr(std::move(coo));
  }
  if (name == "empty_rows") {
    CooMatrix<double> coo(64, 8);
    for (index_t r = 0; r < 64; r += 4) coo.add(r, r % 8, 1.5);
    return coo_to_csr(std::move(coo));
  }
  throw std::invalid_argument("unknown matrix " + name);
}

void expect_matches_exact(const CsrMatrix<double>& a,
                          std::span<const double> x,
                          std::span<const double> y) {
  const auto exact = kernels::spmv_exact(a, x);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0))
        << "row " << i;
  }
}

// ---- CSR-Adaptive ---------------------------------------------------------

class CsrAdaptiveCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(CsrAdaptiveCorrectness, MatchesReference) {
  const auto a = make_matrix(GetParam());
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 100);
  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  std::vector<double> y(static_cast<std::size_t>(a.rows()), std::nan(""));
  adaptive.run(x, std::span<double>(y));
  expect_matches_exact(a, x, y);
}

INSTANTIATE_TEST_SUITE_P(Matrices, CsrAdaptiveCorrectness,
                         ::testing::Values("diag", "short", "power_law",
                                           "long", "mixed", "oversized_rows",
                                           "empty_rows"));

TEST(CsrAdaptive, BlockInvariants) {
  const auto a = make_matrix("mixed");
  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  const auto& blocks = adaptive.row_blocks();
  ASSERT_GE(blocks.size(), 2u);
  EXPECT_EQ(blocks.front(), 0);
  EXPECT_EQ(blocks.back(), a.rows());
  for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
    const index_t rows = blocks[b + 1] - blocks[b];
    ASSERT_GE(rows, 1);
    EXPECT_LE(rows, baseline::CsrAdaptive<double>::kMaxRowsPerBlock);
    offset_t nnz = 0;
    for (index_t r = blocks[b]; r < blocks[b + 1]; ++r) nnz += a.row_nnz(r);
    if (rows > 1) {
      // Multi-row blocks must fit the stream buffer.
      EXPECT_LE(nnz, baseline::CsrAdaptive<double>::kBlockNnz);
    }
  }
}

TEST(CsrAdaptive, ShortRowMatrixPacksManyRowsPerBlock) {
  const auto a = make_matrix("diag");  // 1 nnz/row
  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  // 1000 rows, 256 rows/block cap -> 4 blocks.
  EXPECT_EQ(adaptive.block_count(), 4u);
}

TEST(CsrAdaptive, OversizedRowGetsOwnBlock) {
  const auto a = make_matrix("oversized_rows");
  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  const auto& blocks = adaptive.row_blocks();
  // Row 0 (3000 nnz) must be alone in its block.
  EXPECT_EQ(blocks[0], 0);
  EXPECT_EQ(blocks[1], 1);
}

TEST(CsrAdaptive, ShapeChecks) {
  const auto a = make_matrix("diag");
  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  std::vector<double> y_bad(3);
  EXPECT_THROW(adaptive.run(x, std::span<double>(y_bad)),
               std::invalid_argument);
}

TEST(CsrAdaptive, FloatPath) {
  const auto ad = make_matrix("mixed");
  const auto af = convert_values<float>(ad);
  const auto xd = random_vector(static_cast<std::size_t>(ad.cols()), 101);
  std::vector<float> xf(xd.begin(), xd.end());
  baseline::CsrAdaptive<float> adaptive(af, clsim::default_engine());
  std::vector<float> y(static_cast<std::size_t>(af.rows()));
  adaptive.run(xf, std::span<float>(y));
  const auto exact = kernels::spmv_exact(ad, std::span<const double>(xd));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i],
                2e-4 * (std::abs(exact[i]) + 1.0));
  }
}

// ---- merge-based SpMV -------------------------------------------------------

TEST(MergePath, SearchEndpoints) {
  // 3 rows with ends {2, 2, 5}: row 1 empty.
  const std::vector<offset_t> row_end = {2, 2, 5};
  const auto begin = baseline::merge_path_search(0, row_end, 5);
  EXPECT_EQ(begin.row, 0);
  EXPECT_EQ(begin.nnz, 0);
  const auto end = baseline::merge_path_search(3 + 5, row_end, 5);
  EXPECT_EQ(end.row, 3);
  EXPECT_EQ(end.nnz, 5);
}

TEST(MergePath, CoordinatesAreMonotone) {
  const std::vector<offset_t> row_end = {0, 3, 3, 10, 11};
  baseline::MergeCoord prev{0, 0};
  for (std::int64_t d = 0; d <= 5 + 11; ++d) {
    const auto c = baseline::merge_path_search(d, row_end, 11);
    EXPECT_GE(c.row, prev.row);
    EXPECT_GE(c.nnz, prev.nnz);
    EXPECT_EQ(c.row + c.nnz, d);
    prev = c;
  }
}

class MergeCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(MergeCorrectness, MatchesReference) {
  const auto [name, threads] = GetParam();
  const auto a = make_matrix(name);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 200);
  std::vector<double> y(static_cast<std::size_t>(a.rows()), std::nan(""));
  baseline::spmv_merge(a, std::span<const double>(x), std::span<double>(y), threads);
  expect_matches_exact(a, x, y);
}

INSTANTIATE_TEST_SUITE_P(
    MatricesByThreads, MergeCorrectness,
    ::testing::Combine(::testing::Values("diag", "short", "power_law", "long",
                                         "mixed", "oversized_rows",
                                         "empty_rows"),
                       ::testing::Values(1, 2, 3, 8, 64)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Merge, MoreThreadsThanWorkItems) {
  // 2x2 matrix with 1 nnz, 16 threads: most threads get empty ranges.
  CooMatrix<double> coo(2, 2);
  coo.add(1, 0, 4.0);
  const auto a = coo_to_csr(std::move(coo));
  std::vector<double> x = {2.0, 1.0};
  std::vector<double> y(2, -1.0);
  baseline::spmv_merge(a, std::span<const double>(x), std::span<double>(y), 16);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(Merge, ShapeChecks) {
  const auto a = make_matrix("diag");
  std::vector<double> x_bad(3), y(static_cast<std::size_t>(a.rows()));
  EXPECT_THROW(baseline::spmv_merge(a, std::span<const double>(x_bad), std::span<double>(y)),
               std::invalid_argument);
}

}  // namespace

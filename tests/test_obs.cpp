// spmv::obs: streaming-sink segment round trips, crash-safe rotation
// bounds, injected-drop accounting (paused flusher), concurrent producers
// (the tsan target), trace-observer attach, and the end-to-end acceptance
// path: every non-empty latency bucket's exemplar trace id resolves to a
// span in the rotated segment files.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autospmv.hpp"

using namespace spmv;

namespace {

/// A fresh per-test segment directory under gtest's temp root, removed on
/// destruction so reruns never see a predecessor's segments.
class ObsDir {
 public:
  explicit ObsDir(const std::string& name)
      : path_(::testing::TempDir() + "/autospmv_obs_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~ObsDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Every JSONL record in `files`, parsed.
std::vector<prof::Json> read_records(const std::vector<std::string>& files) {
  std::vector<prof::Json> out;
  for (const auto& f : files) {
    std::ifstream in(f);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(prof::Json::parse(line));
    }
  }
  return out;
}

obs::Record make_span(const char* name, std::uint64_t trace_id,
                      std::uint64_t ts_ns = 0) {
  obs::Record r;
  r.kind = obs::Record::Kind::Span;
  r.name = name;
  r.category = "test";
  r.trace_id = trace_id;
  r.ts_ns = ts_ns;
  r.dur_ns = 100;
  return r;
}

}  // namespace

TEST(ObsSink, SegmentRoundTripPreservesSpanAndStatFields) {
  ObsDir dir("roundtrip");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  obs::StreamingSink sink(sopts);

  obs::Record span = make_span("kernel-run", 42, 1000);
  span.tid = 3;
  span.arg_keys[0] = "rows";
  span.arg_vals[0] = 128;
  EXPECT_TRUE(sink.push(span));
  EXPECT_TRUE(sink.push_stat("serve.batch_width", 4.5));
  sink.close();

  const auto stats = sink.stats();
  EXPECT_EQ(stats.pushed, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.flushed, 2u);
  EXPECT_GT(stats.bytes_written, 0u);
  // close() rotated the active segment: nothing is left in-progress.
  EXPECT_FALSE(std::filesystem::exists(sink.active_path()));

  const auto records = read_records(sink.segment_files());
  ASSERT_EQ(records.size(), 2u);
  const auto& s = records[0];
  EXPECT_EQ(s.at("type").as_string(), "span");
  EXPECT_EQ(s.at("name").as_string(), "kernel-run");
  EXPECT_EQ(s.at("cat").as_string(), "test");
  EXPECT_EQ(s.at("trace_id").as_uint(), 42u);
  EXPECT_EQ(s.at("tid").as_uint(), 3u);
  EXPECT_EQ(s.at("ts_ns").as_uint(), 1000u);
  EXPECT_EQ(s.at("dur_ns").as_uint(), 100u);
  EXPECT_EQ(s.at("attrs").at("rows").as_int(), 128);
  const auto& st = records[1];
  EXPECT_EQ(st.at("type").as_string(), "stat");
  EXPECT_EQ(st.at("name").as_string(), "serve.batch_width");
  EXPECT_DOUBLE_EQ(st.at("value").as_number(), 4.5);
}

TEST(ObsSink, RotationBoundsDiskAndNamesSegmentsCrashSafely) {
  ObsDir dir("rotate");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.segment_max_bytes = 512;  // rotate every handful of records
  sopts.max_segments = 3;
  obs::StreamingSink sink(sopts);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(sink.push(make_span("fill", static_cast<std::uint64_t>(i))));
    if (i % 25 == 0) sink.flush_now();
  }
  sink.close();

  const auto stats = sink.stats();
  EXPECT_EQ(stats.flushed, 200u);
  EXPECT_GT(stats.rotations, 3u);  // rotated well past the retention cap

  // Retention: only the newest max_segments survive, all fully renamed
  // (no .part suffix — a crashed process leaves at most one .part file).
  const auto files = sink.segment_files();
  ASSERT_LE(files.size(), sopts.max_segments);
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    const auto name = std::filesystem::path(f).filename().string();
    EXPECT_EQ(name.rfind("segment-", 0), 0u) << name;
    EXPECT_EQ(name.size(), std::string("segment-000000.jsonl").size());
    EXPECT_EQ(name.substr(name.size() - 6), ".jsonl");
    EXPECT_TRUE(std::filesystem::exists(f));
  }
  // Segments are oldest-first and the retained tail is the newest records.
  const auto records = read_records(files);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().at("trace_id").as_uint(), 199u);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LT(records[i - 1].at("trace_id").as_uint(),
              records[i].at("trace_id").as_uint());
  // Nothing else leaked into the directory.
  std::size_t on_disk = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path()))
    on_disk += e.is_regular_file() ? 1 : 0;
  EXPECT_EQ(on_disk, files.size());
}

TEST(ObsSink, PausedFlusherDropsExactlyTheOverflowAndStaysBounded) {
  ObsDir dir("drops");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.ring_capacity = 64;
  sopts.start_paused = true;  // the deliberately-slow-flusher regime
  obs::StreamingSink sink(sopts);

  constexpr std::uint64_t kOverflow = 37;
  const std::uint64_t total = 64 + kOverflow;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < total; ++i)
    accepted += sink.push(make_span("burst", i)) ? 1 : 0;

  // The ring is the memory bound: exactly capacity records were accepted,
  // the overflow was dropped and counted — never queued, never blocking.
  EXPECT_EQ(accepted, 64u);
  auto stats = sink.stats();
  EXPECT_EQ(stats.pushed, 64u);
  EXPECT_EQ(stats.dropped, kOverflow);
  EXPECT_EQ(stats.flushed, 0u);

  sink.resume();
  sink.close();
  stats = sink.stats();
  EXPECT_EQ(stats.flushed, 64u);
  // The survivors are the first `capacity` pushes (drop-newest ring).
  const auto records = read_records(sink.segment_files());
  ASSERT_EQ(records.size(), 64u);
  std::set<std::uint64_t> ids;
  for (const auto& r : records) ids.insert(r.at("trace_id").as_uint());
  EXPECT_EQ(ids.size(), 64u);
  EXPECT_EQ(*ids.rbegin(), 63u);
}

TEST(ObsSink, PushAfterCloseIsCountedAsDropped) {
  ObsDir dir("closed");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  obs::StreamingSink sink(sopts);
  sink.close();
  EXPECT_FALSE(sink.push(make_span("late", 1)));
  EXPECT_FALSE(sink.push_stat("late.stat", 1.0));
  const auto stats = sink.stats();
  EXPECT_EQ(stats.pushed, 0u);
  EXPECT_EQ(stats.dropped, 2u);
  sink.close();  // idempotent
}

TEST(ObsSink, ConcurrentProducersLoseNothingTheRingAccepted) {
  ObsDir dir("mpsc");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.ring_capacity = 256;  // small enough that producers can outrun it
  sopts.flush_interval_ms = 1;
  obs::StreamingSink sink(sopts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        if (sink.push(make_span("mpsc", id)))
          accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  sink.close();

  const auto stats = sink.stats();
  EXPECT_EQ(stats.pushed, accepted.load());
  EXPECT_EQ(stats.pushed + stats.dropped,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every accepted record reached disk exactly once, uncorrupted.
  EXPECT_EQ(stats.flushed, stats.pushed);
  const auto records = read_records(sink.segment_files());
  ASSERT_EQ(records.size(), stats.flushed);
  std::set<std::uint64_t> ids;
  for (const auto& r : records) {
    EXPECT_EQ(r.at("name").as_string(), "mpsc");
    EXPECT_TRUE(ids.insert(r.at("trace_id").as_uint()).second)
        << "duplicate record " << r.at("trace_id").as_uint();
  }
}

TEST(ObsSink, AttachStreamsCompletedTraceSpans) {
  ObsDir dir("attach");
  trace::stop();
  trace::start();
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  obs::StreamingSink sink(sopts);
  sink.attach();

  const std::uint64_t rid = trace::next_request_id();
  {
    trace::ScopedRequestId scope(rid);
    trace::TraceSpan span("streamed", "test");
    span.arg("rows", 7);
  }
  trace::emit_instant("not-a-span", "test");  // observer streams 'X' only
  trace::stop();
  sink.detach();
  sink.close();
  trace::clear();

  const auto records = read_records(sink.segment_files());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("type").as_string(), "span");
  EXPECT_EQ(records[0].at("name").as_string(), "streamed");
  EXPECT_EQ(records[0].at("trace_id").as_uint(), rid);
  EXPECT_EQ(records[0].at("attrs").at("rows").as_int(), 7);
}

// The ISSUE acceptance path: serve real traffic with tracing and the sink
// attached, then resolve every non-empty request-latency bucket's exemplar
// trace id to a span in the rotated segment files.
TEST(ObsSink, ServeExemplarsResolveToSpansInSegmentFiles) {
  ObsDir dir("serve");
  trace::stop();
  trace::start();
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.ring_capacity = 1 << 15;  // roomy: this test wants zero drops
  obs::StreamingSink sink(sopts);
  sink.attach();

  prof::RunProfile profile;
  const auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(2000, 2000, 2.0, 80, /*seed=*/21));
  core::HeuristicPredictor pred;
  serve::ServiceOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.profile = &profile;
  opts.obs_sink = &sink;
  {
    serve::SpmvService<float> service(pred, opts);
    std::vector<float> x(static_cast<std::size_t>(a->cols()), 1.0f);
    std::vector<std::future<std::vector<float>>> futs;
    for (int i = 0; i < 24; ++i) futs.push_back(service.submit(a, x));
    for (auto& f : futs) (void)f.get();
    service.shutdown();
  }
  trace::stop();
  sink.detach();
  sink.close();
  trace::clear();

  ASSERT_EQ(profile.serve.requests, 24u);
  ASSERT_EQ(profile.serve.request_latency.count(), 24u);
  EXPECT_EQ(sink.stats().dropped, 0u);

  // Collect every span trace id that reached disk.
  std::set<std::uint64_t> on_disk;
  for (const auto& r : read_records(sink.segment_files())) {
    if (r.at("type").as_string() == "span")
      on_disk.insert(r.at("trace_id").as_uint());
  }
  ASSERT_FALSE(on_disk.empty());

  // Every non-empty latency bucket carries a traced exemplar, and each
  // exemplar's trace id resolves to a streamed span.
  const auto& hist = profile.serve.request_latency;
  int non_empty = 0;
  for (int i = 0; i < prof::LatencyHistogram::kBuckets; ++i) {
    if (hist.buckets()[static_cast<std::size_t>(i)] == 0) continue;
    non_empty += 1;
    const auto& ex = hist.exemplar(i);
    ASSERT_TRUE(ex.valid()) << "bucket " << i << " lost its exemplar";
    EXPECT_NE(ex.trace_id, 0u);
    EXPECT_EQ(on_disk.count(ex.trace_id), 1u)
        << "exemplar trace id " << ex.trace_id
        << " has no span in the segment files";
    EXPECT_GT(ex.value_s, 0.0);
    EXPECT_EQ(ex.fingerprint, serve::fingerprint_of(*a).row_hash);
  }
  ASSERT_GT(non_empty, 0);

  // The exemplars survive the JSON artifact and the Prometheus exposition.
  const auto restored =
      prof::RunProfile::from_json(prof::Json::parse(profile.to_json_text()));
  for (int i = 0; i < prof::LatencyHistogram::kBuckets; ++i) {
    if (hist.buckets()[static_cast<std::size_t>(i)] == 0) continue;
    EXPECT_EQ(restored.serve.request_latency.exemplar(i).trace_id,
              hist.exemplar(i).trace_id);
  }
  const auto text = prof::prometheus_text(profile);
  EXPECT_NE(text.find("# {trace_id=\""), std::string::npos);

  // The worker-side stat deltas flowed through the sink too.
  bool saw_stat = false;
  for (const auto& r : read_records(sink.segment_files())) {
    if (r.at("type").as_string() == "stat" &&
        r.at("name").as_string() == "serve.batch_exec_s")
      saw_stat = true;
  }
  EXPECT_TRUE(saw_stat);
}

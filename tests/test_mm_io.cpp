// Tests for Matrix Market I/O: round trips, symmetry expansion, error
// handling on malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/convert.hpp"
#include "sparse/mm_io.hpp"

namespace {

using namespace spmv;

TEST(MmIo, WriteReadRoundTrip) {
  CooMatrix<double> coo(3, 4);
  coo.add(0, 0, 1.5);
  coo.add(1, 3, -2.25);
  coo.add(2, 1, 7.0);
  std::stringstream ss;
  write_matrix_market(ss, coo);
  MmHeader header;
  auto back = read_matrix_market<double>(ss, &header);
  EXPECT_EQ(header.field, "real");
  EXPECT_EQ(header.symmetry, "general");
  EXPECT_EQ(back.rows(), 3);
  EXPECT_EQ(back.cols(), 4);
  back.sort_row_major();
  coo.sort_row_major();
  EXPECT_EQ(back.entries(), coo.entries());
}

TEST(MmIo, ReadsGeneralReal) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "2 2 2\n"
      "1 1 3.5\n"
      "2 2 -1\n");
  const auto coo = read_matrix_market<double>(ss);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 3.5);
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, -1.0);
}

TEST(MmIo, ExpandsSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1\n"
      "2 1 5\n"
      "3 2 7\n");
  auto coo = read_matrix_market<double>(ss);
  // 1 diagonal + 2 off-diagonals mirrored = 5 entries.
  EXPECT_EQ(coo.nnz(), 5u);
  const auto csr = coo_to_csr(std::move(coo));
  EXPECT_EQ(csr.row_nnz(0), 2);  // (0,0) and mirrored (0,1)
  EXPECT_EQ(csr.row_nnz(1), 2);  // (1,0) and mirrored (1,2)
}

TEST(MmIo, ExpandsSkewSymmetricWithNegation) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 4\n");
  auto coo = read_matrix_market<double>(ss);
  ASSERT_EQ(coo.nnz(), 2u);
  coo.sort_row_major();
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, -4.0);  // mirrored (0,1)
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, 4.0);
}

TEST(MmIo, PatternValuesBecomeOne) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto coo = read_matrix_market<float>(ss);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 1.0f);
}

TEST(MmIo, IntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 -7\n");
  const auto coo = read_matrix_market<double>(ss);
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, -7.0);
}

TEST(MmIo, RejectsMissingBanner) {
  std::stringstream ss("not a banner\n1 1 0\n");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, RejectsArrayFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n1\n");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, RejectsComplexField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, RejectsOutOfRangeEntry) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, RejectsTruncatedEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, RejectsEmptyStream) {
  std::stringstream ss("");
  EXPECT_THROW(read_matrix_market<double>(ss), std::runtime_error);
}

TEST(MmIo, FileHelpersThrowOnMissingPath) {
  EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/file.mtx"),
               std::runtime_error);
}

TEST(MmIo, OneBasedIndicesOnDisk) {
  CooMatrix<double> coo(1, 1);
  coo.add(0, 0, 2.0);
  std::stringstream ss;
  write_matrix_market(ss, coo);
  const std::string text = ss.str();
  EXPECT_NE(text.find("\n1 1 2\n"), std::string::npos);
}

}  // namespace

// Tests for the synthetic matrix generators, the Table-II representative
// analogues, and the UF-like corpus sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gen/corpus.hpp"
#include "gen/generators.hpp"
#include "gen/representative.hpp"
#include "sparse/matrix_stats.hpp"

namespace {

using namespace spmv;

TEST(Generators, DiagonalShape) {
  const auto a = gen::diagonal<double>(100);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(a.rows(), 100);
  EXPECT_EQ(a.nnz(), 100);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.row_nnz(i), 1);
    EXPECT_EQ(a.col_idx()[static_cast<std::size_t>(i)], i);
  }
}

TEST(Generators, BandedStaysInBand) {
  const index_t half_band = 5;
  const auto a = gen::banded<double>(200, half_band, 0.6, 42);
  EXPECT_TRUE(a.validate());
  const auto row_ptr = a.row_ptr();
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_GE(a.row_nnz(i), 1);  // diagonal always present
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      const index_t c = a.col_idx()[static_cast<std::size_t>(j)];
      EXPECT_LE(std::abs(c - i), half_band);
    }
  }
}

TEST(Generators, BandedIsDeterministic) {
  const auto a = gen::banded<double>(100, 3, 0.5, 7);
  const auto b = gen::banded<double>(100, 3, 0.5, 7);
  EXPECT_EQ(a, b);
}

TEST(Generators, FixedDegreeExact) {
  const auto a = gen::fixed_degree<double>(500, 80, 4, 9);
  EXPECT_TRUE(a.validate());
  for (index_t i = 0; i < a.rows(); ++i) EXPECT_EQ(a.row_nnz(i), 4);
}

TEST(Generators, FixedDegreeColumnsDistinct) {
  const auto a = gen::fixed_degree<double>(50, 10, 7, 3);
  const auto row_ptr = a.row_ptr();
  for (index_t i = 0; i < a.rows(); ++i) {
    std::set<index_t> cols;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      cols.insert(a.col_idx()[static_cast<std::size_t>(j)]);
    }
    EXPECT_EQ(cols.size(), 7u);
  }
}

TEST(Generators, FixedDegreeRejectsDegreeAboveCols) {
  EXPECT_THROW(gen::fixed_degree<double>(10, 5, 6, 1), std::invalid_argument);
}

TEST(Generators, RandomUniformDegreeBounds) {
  const auto a = gen::random_uniform<double>(300, 300, 10.0, 0.3, 2, 30, 5);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_GE(stats.min_nnz, 2);
  EXPECT_LE(stats.max_nnz, 30);
  EXPECT_NEAR(stats.avg_nnz, 10.0, 2.0);
}

TEST(Generators, PowerLawIsSkewed) {
  const auto a = gen::power_law<double>(2000, 2000, 2.0, 500, 11);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_EQ(stats.min_nnz, 1);
  EXPECT_GT(stats.max_nnz, 10);
  // Power-law: average far below max.
  EXPECT_LT(stats.avg_nnz, static_cast<double>(stats.max_nnz) / 3.0);
}

TEST(Generators, RoadNetworkDegrees) {
  const auto a = gen::road_network<double>(2000, 13);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_GE(stats.min_nnz, 1);
  EXPECT_LE(stats.max_nnz, 4);
  EXPECT_NEAR(stats.avg_nnz, 2.5, 0.5);
}

TEST(Generators, MeshDualDegrees) {
  const auto a = gen::mesh_dual<double>(1500, 17);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_GE(stats.min_nnz, 2);
  EXPECT_LE(stats.max_nnz, 3);
}

TEST(Generators, FemBlocksLongRows) {
  const auto a = gen::fem_blocks<double>(1000, 25, 60, 0.2, 19);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_NEAR(stats.avg_nnz, 60.0, 15.0);
  // Rows in one block share a degree.
  EXPECT_EQ(a.row_nnz(0), a.row_nnz(1));
  EXPECT_EQ(a.row_nnz(0), a.row_nnz(24));
}

TEST(Generators, CfdLongRowLowVariance) {
  const auto a = gen::cfd_longrow<double>(800, 100, 23);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_NEAR(stats.avg_nnz, 100.0, 10.0);
  // Coefficient of variation should be small (~0.1).
  EXPECT_LT(std::sqrt(stats.var_nnz) / stats.avg_nnz, 0.25);
}

TEST(Generators, ChemistryHasHeavyTail) {
  const auto a = gen::chemistry<double>(3000, 80, 29);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_GT(stats.max_nnz, 2 * static_cast<offset_t>(stats.avg_nnz));
}

TEST(Generators, MixedRegimeCoversRegimes) {
  const auto a =
      gen::mixed_regime<double>(4000, 4000, 0.4, 0.4, 3, 30, 300, 50, 31);
  EXPECT_TRUE(a.validate());
  const auto stats = compute_row_stats(a);
  EXPECT_LE(stats.min_nnz, 4);
  EXPECT_GE(stats.max_nnz, 200);
}

TEST(Generators, RejectsNonPositiveDims) {
  EXPECT_THROW(gen::diagonal<double>(0), std::invalid_argument);
  EXPECT_THROW(gen::banded<double>(-5, 2, 0.5, 1), std::invalid_argument);
}

// --- Table II -----------------------------------------------------------

TEST(Representative, CatalogueHas16Entries) {
  const auto& catalogue = gen::representative_catalogue();
  ASSERT_EQ(catalogue.size(), 16u);
  EXPECT_EQ(catalogue.front().name, "apache1");
  EXPECT_EQ(catalogue.back().name, "whitaker3_dual");
}

TEST(Representative, OnlyHugeMatricesAreScaled) {
  for (const auto& info : gen::representative_catalogue()) {
    if (info.name == "europe_osm" || info.name == "HV15R") {
      EXPECT_LT(info.scale, 1.0) << info.name;
    } else {
      EXPECT_DOUBLE_EQ(info.scale, 1.0) << info.name;
    }
  }
}

TEST(Representative, UnknownNameThrows) {
  EXPECT_THROW(gen::make_representative<float>("not_a_matrix"),
               std::invalid_argument);
}

// Every representative analogue must roughly match the paper's row count
// and average row length (x scale). Parameterized over the catalogue.
class RepresentativeFidelity : public ::testing::TestWithParam<int> {};

TEST_P(RepresentativeFidelity, MatchesPaperShape) {
  const auto& info =
      gen::representative_catalogue()[static_cast<std::size_t>(GetParam())];
  // Generate a scaled-down instance for test speed: cap at ~40k rows while
  // preserving the kind (the full-size instances are exercised by benches).
  auto scaled = info;
  const double extra =
      std::min(1.0, 40000.0 / (static_cast<double>(info.paper_rows) *
                               info.scale));
  scaled.scale *= extra;
  const auto a = gen::make_representative<float>(scaled, 1);
  EXPECT_TRUE(a.validate());

  const double expected_rows =
      static_cast<double>(info.paper_rows) * scaled.scale;
  EXPECT_NEAR(static_cast<double>(a.rows()), expected_rows,
              expected_rows * 0.02 + 2.0);

  const double paper_avg = static_cast<double>(info.paper_nnz) /
                           static_cast<double>(info.paper_rows);
  const auto stats = compute_row_stats(a);
  // Average row length within 40% of the paper's (generators are synthetic
  // analogues, not replicas).
  EXPECT_NEAR(stats.avg_nnz, paper_avg, paper_avg * 0.4 + 1.0)
      << info.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, RepresentativeFidelity,
                         ::testing::Range(0, 16));

// --- corpus --------------------------------------------------------------

TEST(Corpus, DeterministicSampling) {
  gen::CorpusOptions opts;
  opts.count = 50;
  const auto a = gen::sample_corpus(opts);
  const auto b = gen::sample_corpus(opts);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].family), static_cast<int>(b[i].family));
    EXPECT_EQ(a[i].rows, b[i].rows);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Corpus, RowBoundsRespected) {
  gen::CorpusOptions opts;
  opts.count = 100;
  opts.min_rows = 1000;
  opts.max_rows = 5000;
  for (const auto& spec : gen::sample_corpus(opts)) {
    EXPECT_GE(spec.rows, 1000);
    EXPECT_LE(spec.rows, 5001);
  }
}

TEST(Corpus, ShortRowFamiliesDominate) {
  gen::CorpusOptions opts;
  opts.count = 400;
  int long_row_families = 0;
  for (const auto& spec : gen::sample_corpus(opts)) {
    if (spec.family == gen::Family::FemBlocks ||
        spec.family == gen::Family::CfdLongRow ||
        spec.family == gen::Family::Chemistry) {
      ++long_row_families;
    }
  }
  // Long-row families are a rare (~2%) slice of the mix, as in the UF
  // collection (this is what produces the Figure-5 98.7% statistic).
  EXPECT_LT(long_row_families, 40);
  EXPECT_GT(long_row_families, 1);
}

class CorpusFamilies : public ::testing::TestWithParam<int> {};

TEST_P(CorpusFamilies, EveryFamilyInstantiates) {
  gen::CorpusSpec spec;
  spec.family = static_cast<gen::Family>(GetParam());
  spec.rows = 500;
  spec.cols = 500;
  spec.seed = 77;
  spec.param = 8;
  const auto a = gen::make_corpus_matrix<float>(spec);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(a.rows(), 500);
  EXPECT_GT(a.nnz(), 0);
  EXPECT_FALSE(gen::family_name(spec.family).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CorpusFamilies,
    ::testing::Range(0, static_cast<int>(gen::Family::kCount)));

}  // namespace

// Tests for the extensions beyond the paper's core framework: row
// reordering (sparse/reorder) and heterogeneous bin scheduling
// (core/hetero, the paper's §VI future-work proposal).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/hetero.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "sparse/reorder.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// ---- reorder ---------------------------------------------------------

TEST(Reorder, PermutationPredicates) {
  EXPECT_TRUE(is_identity(std::vector<index_t>{0, 1, 2}));
  EXPECT_FALSE(is_identity(std::vector<index_t>{0, 2, 1}));
  EXPECT_TRUE(is_permutation(std::vector<index_t>{2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 0, 1}, 3));  // dup
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 1, 3}, 3));  // range
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 1}, 3));     // size
}

TEST(Reorder, SortRowsByLengthIsMonotone) {
  const auto a = gen::power_law<double>(1500, 1500, 2.0, 300, 3);
  const auto perm = sort_rows_by_length(a);
  ASSERT_TRUE(is_permutation(perm, a.rows()));
  const auto sorted = permute_rows(a, perm);
  for (index_t i = 1; i < sorted.rows(); ++i) {
    EXPECT_LE(sorted.row_nnz(i - 1), sorted.row_nnz(i));
  }
  EXPECT_EQ(sorted.nnz(), a.nnz());
  EXPECT_TRUE(sorted.validate());
}

TEST(Reorder, SortIsStableForEqualLengths) {
  const auto a = gen::fixed_degree<double>(100, 50, 3, 5);
  const auto perm = sort_rows_by_length(a);
  EXPECT_TRUE(is_identity(perm));  // all rows equal: stable sort = identity
}

TEST(Reorder, PermuteRowsRejectsBadPerm) {
  const auto a = gen::diagonal<double>(10);
  EXPECT_THROW(permute_rows(a, std::vector<index_t>{0, 1}),
               std::invalid_argument);
}

TEST(Reorder, PermutedSpmvUnpermutesToOriginal) {
  const auto a =
      gen::mixed_regime<double>(800, 800, 0.4, 0.4, 2, 30, 200, 16, 7);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 11);
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));

  const auto perm = sort_rows_by_length(a);
  const auto sorted = permute_rows(a, perm);
  std::vector<double> y_perm(static_cast<std::size_t>(a.rows()));
  kernels::spmv_sequential(sorted, std::span<const double>(x),
                           std::span<double>(y_perm));
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  unpermute(std::span<const double>(y_perm), perm, std::span<double>(y));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  }
}

TEST(Reorder, InvertPermutationRoundTrips) {
  const std::vector<index_t> perm = {3, 1, 4, 0, 2};
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])],
              static_cast<index_t>(i));
  }
  EXPECT_EQ(invert_permutation(inv), perm);  // involution
}

TEST(Reorder, SortingReducesAdjacentLengthVariation) {
  // The property that makes sorted + coarse binning approximate the
  // fine-grained scheme: adjacent rows have similar lengths.
  const auto a = gen::power_law<double>(3000, 3000, 2.0, 500, 13);
  const auto sorted = permute_rows(a, sort_rows_by_length(a));
  auto adjacent_variation = [](const CsrMatrix<double>& m) {
    double total = 0.0;
    for (index_t i = 1; i < m.rows(); ++i) {
      total += std::abs(static_cast<double>(m.row_nnz(i) - m.row_nnz(i - 1)));
    }
    return total;
  };
  EXPECT_LT(adjacent_variation(sorted), adjacent_variation(a) / 4.0);
}

// ---- hetero ------------------------------------------------------------

TEST(Hetero, CpuBinnedMatchesReferenceOnSubset) {
  const auto a =
      gen::mixed_regime<double>(1200, 1200, 0.4, 0.4, 2, 30, 200, 16, 17);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 19);
  const auto bins = binning::bin_matrix(a, 50);
  const auto occupied = bins.occupied_bins();
  ASSERT_FALSE(occupied.empty());

  std::vector<double> y(static_cast<std::size_t>(a.rows()),
                        std::nan(""));
  for (int b : occupied) {
    core::spmv_cpu_binned(a, std::span<const double>(x), std::span<double>(y),
                          bins.bin(b), 50);
  }
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  }
}

class HeteroCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(HeteroCorrectness, MatchesReferenceAcrossThresholds) {
  const int threshold = GetParam();
  const auto a =
      gen::mixed_regime<double>(2000, 2000, 0.4, 0.3, 3, 40, 300, 32, 23);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 29);

  core::HeuristicPredictor pred;
  core::HeteroOptions opts;
  opts.gpu_row_threshold = threshold;
  core::HeteroAutoSpmv<double> spmv(a, pred, opts);

  std::vector<double> y(static_cast<std::size_t>(a.rows()), std::nan(""));
  spmv.run(x, std::span<double>(y));
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  }

  // Partition invariant: every occupied bin on exactly one device.
  std::set<int> all;
  for (int b : spmv.gpu_bins()) {
    EXPECT_LT(b, threshold);
    EXPECT_TRUE(all.insert(b).second);
  }
  for (int b : spmv.cpu_bins()) {
    EXPECT_GE(b, threshold);
    EXPECT_TRUE(all.insert(b).second);
  }
  EXPECT_EQ(all.size(), spmv.plan().bin_kernels.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HeteroCorrectness,
                         ::testing::Values(0, 16, 64, 100));

TEST(Hetero, ThresholdZeroSendsAllBinsToCpu) {
  const auto a = gen::power_law<double>(1000, 1000, 2.0, 100, 31);
  core::HeuristicPredictor pred;
  core::HeteroOptions opts;
  opts.gpu_row_threshold = 0;
  core::HeteroAutoSpmv<double> spmv(a, pred, opts);
  EXPECT_TRUE(spmv.gpu_bins().empty());
  EXPECT_FALSE(spmv.cpu_bins().empty());
}

TEST(Hetero, ThresholdMaxSendsAllBinsToGpu) {
  const auto a = gen::power_law<double>(1000, 1000, 2.0, 100, 37);
  core::HeuristicPredictor pred;
  core::HeteroOptions opts;
  opts.gpu_row_threshold = binning::kMaxBins;
  core::HeteroAutoSpmv<double> spmv(a, pred, opts);
  EXPECT_TRUE(spmv.cpu_bins().empty());
  EXPECT_FALSE(spmv.gpu_bins().empty());
}

}  // namespace

// Tests for the per-bin physical-format subsystem (spmv::fmt): name
// registry round trips, layout builders vs the exact CSR result (including
// empty-covered-row zeroing and the batched variants), builder rejection of
// unsuitable bins, the feature-based estimator's regime decisions, the
// lazy/amortized PlanLayouts cache, and end-to-end execute_plan behaviour
// on format-capable and format-blind backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "binning/binning.hpp"
#include "core/predictor.hpp"
#include "core/tuner.hpp"
#include "exec/backend.hpp"
#include "fmt/estimate.hpp"
#include "fmt/format.hpp"
#include "fmt/plan_layouts.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

template <typename T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Build a CSR matrix from per-row (col, val) lists.
CsrMatrix<float> make_csr(index_t cols,
                          const std::vector<std::vector<std::pair<index_t, float>>>& rows) {
  std::vector<offset_t> rp = {0};
  std::vector<index_t> ci;
  std::vector<float> vals;
  for (const auto& row : rows) {
    for (const auto& [c, v] : row) {
      ci.push_back(c);
      vals.push_back(v);
    }
    rp.push_back(static_cast<offset_t>(ci.size()));
  }
  return CsrMatrix<float>(static_cast<index_t>(rows.size()), cols,
                          std::move(rp), std::move(ci), std::move(vals));
}

/// The covered actual row ids of a materialized layout (each payload
/// carries its own copy).
template <typename T>
const std::vector<index_t>& covered_rows(const fmt::BinLayout<T>& l) {
  switch (l.kind) {
    case fmt::FormatKind::Ell:
      return l.ell.rows;
    case fmt::FormatKind::Coo:
      return l.coo.rows;
    default:
      return l.dcsr.rows;
  }
}

/// Check one bin's layout execution against the exact result: covered rows
/// (including empty ones) must match exactly-computed values, uncovered rows
/// must keep the sentinel.
void expect_layout_exact(const exec::Backend& backend,
                         const CsrMatrix<float>& a,
                         const fmt::BinLayout<float>& layout,
                         std::span<const float> x) {
  constexpr float kSentinel = 12345.0f;
  const auto exact = kernels::spmv_exact(a, x);
  std::vector<float> y(static_cast<std::size_t>(a.rows()), kSentinel);
  backend.run_layout(a, layout, x, std::span<float>(y));
  std::vector<bool> covered(static_cast<std::size_t>(a.rows()), false);
  for (const index_t r : covered_rows(layout))
    covered[static_cast<std::size_t>(r)] = true;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (covered[i]) {
      ASSERT_NEAR(y[i], exact[i], 2e-4 * (std::abs(exact[i]) + 1.0))
          << "row " << i << " kind " << fmt::format_cname(layout.kind);
    } else {
      ASSERT_EQ(y[i], kSentinel)
          << "row " << i << " outside the bin was touched";
    }
  }
}

// --- name registry --------------------------------------------------------

TEST(FormatNames, RoundTripAllKnownNames) {
  ASSERT_EQ(fmt::all_formats().size(),
            static_cast<std::size_t>(fmt::kFormatCount));
  EXPECT_EQ(fmt::all_formats().front(), fmt::FormatKind::Csr);
  for (const fmt::FormatKind k : fmt::all_formats()) {
    fmt::FormatKind back;
    ASSERT_TRUE(fmt::try_format_from_name(fmt::format_name(k), &back));
    EXPECT_EQ(back, k);
    EXPECT_EQ(fmt::format_from_name(fmt::format_name(k)), k);
    EXPECT_STREQ(fmt::format_cname(k), fmt::format_name(k).c_str());
  }
}

TEST(FormatNames, UnknownNamesAreRejectedWithoutClobbering) {
  fmt::FormatKind out = fmt::FormatKind::Dcsr;
  EXPECT_FALSE(fmt::try_format_from_name("hyb", &out));
  EXPECT_EQ(out, fmt::FormatKind::Dcsr);  // untouched on failure
  EXPECT_THROW((void)fmt::format_from_name("hyb"), std::invalid_argument);
  EXPECT_THROW((void)fmt::format_mode_from_name("always"),
               std::invalid_argument);
  EXPECT_EQ(fmt::format_mode_from_name("csr"), fmt::FormatMode::Csr);
  EXPECT_EQ(fmt::format_mode_from_name("auto"), fmt::FormatMode::Auto);
}

// --- layout builders vs exact ---------------------------------------------

TEST(Layouts, EllMatchesExactIncludingEmptyCoveredRows) {
  // Near-uniform short rows with a hole: row 3 is empty but covered, so the
  // ELL launch must zero it, not skip it.
  auto rows = std::vector<std::vector<std::pair<index_t, float>>>(64);
  util::Xoshiro256 rng(5);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r == 3) continue;
    for (index_t k = 0; k < 3 + static_cast<index_t>(r % 2); ++k)
      rows[r].push_back({static_cast<index_t>((r * 7 + k * 11) % 64),
                         static_cast<float>(rng.uniform(0.5, 1.5))});
  }
  const auto a = make_csr(64, rows);
  const auto bins = binning::bin_matrix(a, 8);
  const auto x = random_vector<float>(64, 7);
  const auto backend = exec::shared_backend(exec::BackendKind::Native);
  for (const int b : bins.occupied_bins()) {
    const auto layout = fmt::build_bin_layout(
        a, std::span<const index_t>(bins.bin(b)), bins.unit(),
        fmt::FormatKind::Ell, b);
    EXPECT_EQ(layout.kind, fmt::FormatKind::Ell);
    EXPECT_EQ(layout.bin_id, b);
    EXPECT_GT(layout.bytes, 0u);
    expect_layout_exact(*backend, a, layout, x);
  }
}

TEST(Layouts, CooMatchesExactOnScatterBins) {
  const auto a = gen::power_law<float>(600, 600, 2.0, 60, 17);
  const auto bins = binning::bin_matrix(a, 32);
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 19);
  const auto backend = exec::shared_backend(exec::BackendKind::Native);
  for (const int b : bins.occupied_bins()) {
    const auto layout = fmt::build_bin_layout(
        a, std::span<const index_t>(bins.bin(b)), bins.unit(),
        fmt::FormatKind::Coo, b);
    // Chunks never split a row (the no-atomics invariant).
    ASSERT_GE(layout.coo.chunk_ptr.size(), 2u);
    for (std::size_t c = 1; c + 1 < layout.coo.chunk_ptr.size(); ++c) {
      const std::size_t at = layout.coo.chunk_ptr[c];
      ASSERT_NE(layout.coo.entry_row[at], layout.coo.entry_row[at - 1])
          << "chunk boundary " << c << " splits a row";
    }
    expect_layout_exact(*backend, a, layout, x);
  }
}

TEST(Layouts, DcsrMatchesExactOnBandedBins) {
  const auto a = gen::banded<float>(500, 12, 0.8, 23);
  const auto bins = binning::bin_matrix(a, 25);
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 29);
  const auto backend = exec::shared_backend(exec::BackendKind::Native);
  for (const int b : bins.occupied_bins()) {
    const auto layout = fmt::build_bin_layout(
        a, std::span<const index_t>(bins.bin(b)), bins.unit(),
        fmt::FormatKind::Dcsr, b);
    expect_layout_exact(*backend, a, layout, x);
  }
}

TEST(Layouts, BatchedExecutionMatchesSingleVector) {
  const auto a = gen::fixed_degree<float>(400, 400, 5, 31);
  const auto bins = binning::bin_matrix(a, 16);
  const auto backend = exec::shared_backend(exec::BackendKind::Native);
  constexpr int kBatch = 3;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const auto x = random_vector<float>(n * kBatch, 37);
  for (const fmt::FormatKind kind :
       {fmt::FormatKind::Ell, fmt::FormatKind::Coo, fmt::FormatKind::Dcsr}) {
    for (const int b : bins.occupied_bins()) {
      const auto layout = fmt::build_bin_layout(
          a, std::span<const index_t>(bins.bin(b)), bins.unit(), kind, b);
      std::vector<float> y_batch(m * kBatch, -1.0f);
      backend->run_layout_batch(a, layout, std::span<const float>(x),
                                std::span<float>(y_batch), kBatch);
      for (int col = 0; col < kBatch; ++col) {
        std::vector<float> y(m, -1.0f);
        backend->run_layout(
            a, layout,
            std::span<const float>(x).subspan(static_cast<std::size_t>(col) * n,
                                              n),
            std::span<float>(y));
        for (const index_t r : covered_rows(layout)) {
          const auto i = static_cast<std::size_t>(r);
          ASSERT_NEAR(y_batch[static_cast<std::size_t>(col) * m + i], y[i],
                      2e-4 * (std::abs(y[i]) + 1.0))
              << "col " << col << " row " << i << " kind "
              << fmt::format_cname(kind);
        }
      }
    }
  }
}

TEST(Layouts, BuildersRejectUnsuitableBins) {
  const auto bins_of = [](const CsrMatrix<float>& a) {
    return binning::bin_matrix(a, a.rows());  // one bin covering everything
  };
  // CSR is never materialized.
  const auto uniform = gen::fixed_degree<float>(64, 64, 3, 41);
  const auto ubins = bins_of(uniform);
  const int ub = ubins.occupied_bins().front();
  EXPECT_THROW((void)fmt::build_bin_layout(
                   uniform, std::span<const index_t>(ubins.bin(ub)),
                   ubins.unit(), fmt::FormatKind::Csr, ub),
               std::invalid_argument);

  // ELL expansion blow-up: one 200-long row amid 199 single-entry rows.
  auto skew_rows = std::vector<std::vector<std::pair<index_t, float>>>(200);
  for (index_t c = 0; c < 200; ++c) skew_rows[0].push_back({c, 1.0f});
  for (std::size_t r = 1; r < 200; ++r)
    skew_rows[r].push_back({static_cast<index_t>(r), 1.0f});
  const auto skew = make_csr(200, skew_rows);
  const auto sbins = bins_of(skew);
  const int sb = sbins.occupied_bins().front();
  EXPECT_THROW((void)fmt::build_bin_layout(
                   skew, std::span<const index_t>(sbins.bin(sb)), sbins.unit(),
                   fmt::FormatKind::Ell, sb),
               std::length_error);

  // Dcsr delta overflow: an intra-row column gap wider than 16 bits.
  const auto wide = make_csr(
      70000, {{{0, 1.0f}, {69999, 2.0f}}, {{1, 1.0f}, {2, 1.0f}}});
  const auto wbins = bins_of(wide);
  const int wb = wbins.occupied_bins().front();
  EXPECT_THROW((void)fmt::build_bin_layout(
                   wide, std::span<const index_t>(wbins.bin(wb)), wbins.unit(),
                   fmt::FormatKind::Dcsr, wb),
               std::length_error);
}

TEST(Layouts, FormatBlindBackendThrowsLogicError) {
  const auto a = gen::fixed_degree<float>(64, 64, 3, 43);
  const auto bins = binning::bin_matrix(a, 8);
  const auto layout = fmt::build_bin_layout(
      a, std::span<const index_t>(bins.bin(bins.occupied_bins().front())),
      bins.unit(), fmt::FormatKind::Ell, bins.occupied_bins().front());
  const auto clsim_backend = exec::shared_backend(exec::BackendKind::Clsim);
  ASSERT_FALSE(clsim_backend->supports_formats());
  const auto x = random_vector<float>(64, 47);
  std::vector<float> y(64);
  EXPECT_THROW(
      clsim_backend->run_layout(a, layout, x, std::span<float>(y)),
      std::logic_error);
}

// --- estimator ------------------------------------------------------------

TEST(Estimator, PicksTheExpectedFormatPerRegime) {
  // Near-uniform short rows -> ELL.
  const auto uniform = gen::fixed_degree<float>(512, 512, 4, 53);
  const auto ubins = binning::bin_matrix(uniform, 512);
  const auto uf = fmt::compute_bin_features(
      uniform, std::span<const index_t>(ubins.bin(ubins.occupied_bins().front())),
      ubins.unit());
  EXPECT_LE(uf.padding_ratio, 1.25);
  EXPECT_EQ(fmt::estimate_bin_format(uf), fmt::FormatKind::Ell);

  // Long banded rows (too wide for ELL, spans fit 16 bits) -> Dcsr.
  auto banded_rows = std::vector<std::vector<std::pair<index_t, float>>>(64);
  util::Xoshiro256 rng(59);
  for (std::size_t r = 0; r < banded_rows.size(); ++r) {
    const auto base = static_cast<index_t>(r * 4);
    const index_t len = 40 + static_cast<index_t>(rng.bounded(60));  // >64 max
    for (index_t k = 0; k < len; ++k)
      banded_rows[r].push_back({base + k, 1.0f});
  }
  const auto banded = make_csr(64 * 4 + 100, banded_rows);
  const auto bbins = binning::bin_matrix(banded, banded.rows());
  const auto bf = fmt::compute_bin_features(
      banded, std::span<const index_t>(bbins.bin(bbins.occupied_bins().front())),
      bbins.unit());
  EXPECT_GT(bf.max_len, 64);
  EXPECT_EQ(fmt::estimate_bin_format(bf), fmt::FormatKind::Dcsr);

  // Mostly-empty scatter -> COO.
  auto scatter_rows = std::vector<std::vector<std::pair<index_t, float>>>(100);
  scatter_rows[0] = {{0, 1.0f}, {90, 2.0f}, {17, 1.5f}, {55, 1.0f},
                     {3, 1.0f}, {70, 2.0f}, {44, 1.5f}, {61, 1.0f},
                     {8, 1.0f}, {29, 2.0f}};
  scatter_rows[50] = {{7, 3.0f}};
  const auto scatter = make_csr(100, scatter_rows);
  const auto sbins = binning::bin_matrix(scatter, scatter.rows());
  const auto sf = fmt::compute_bin_features(
      scatter, std::span<const index_t>(sbins.bin(sbins.occupied_bins().front())),
      sbins.unit());
  EXPECT_GT(sf.empty_rows * 2, sf.rows);
  EXPECT_EQ(fmt::estimate_bin_format(sf), fmt::FormatKind::Coo);

  // An empty bin stays CSR (nothing to transform).
  const fmt::BinFeatures empty;
  EXPECT_EQ(fmt::estimate_bin_format(empty), fmt::FormatKind::Csr);
}

TEST(Estimator, SuitableFormatsAlwaysStartWithCsr) {
  const auto a = gen::power_law<float>(400, 400, 2.0, 40, 61);
  const auto bins = binning::bin_matrix(a, 32);
  for (const int b : bins.occupied_bins()) {
    const auto f = fmt::compute_bin_features(
        a, std::span<const index_t>(bins.bin(b)), bins.unit());
    const auto pool = fmt::suitable_formats(f);
    ASSERT_FALSE(pool.empty());
    EXPECT_EQ(pool.front(), fmt::FormatKind::Csr);
    // No duplicates; every entry is a known kind.
    for (std::size_t i = 0; i < pool.size(); ++i)
      for (std::size_t j = i + 1; j < pool.size(); ++j)
        EXPECT_NE(pool[i], pool[j]);
  }
}

TEST(Estimator, SuitablePoolGatesCooOnScatterSignals) {
  // Dense uniform bin (no empty rows, avg length well above the scatter
  // bar): COO cannot beat CSR there, so it must not cost a shadow trial.
  const auto dense = gen::fixed_degree<float>(200, 800, 8, 43);
  const auto dbins = binning::bin_matrix(dense, dense.rows());
  const auto df = fmt::compute_bin_features(
      dense,
      std::span<const index_t>(dbins.bin(dbins.occupied_bins().front())),
      dbins.unit());
  EXPECT_EQ(df.empty_rows, 0u);
  EXPECT_GT(df.avg_len, 4.0);
  const auto dpool = fmt::suitable_formats(df);
  EXPECT_EQ(std::count(dpool.begin(), dpool.end(), fmt::FormatKind::Coo), 0);

  // Mostly-empty scatter bin: COO stays in the pool.
  auto rows = std::vector<std::vector<std::pair<index_t, float>>>(100);
  rows[0] = {{0, 1.0f}, {90, 2.0f}, {17, 1.5f}};
  rows[50] = {{7, 3.0f}};
  const auto scatter = make_csr(100, rows);
  const auto sbins = binning::bin_matrix(scatter, scatter.rows());
  const auto sf = fmt::compute_bin_features(
      scatter,
      std::span<const index_t>(sbins.bin(sbins.occupied_bins().front())),
      sbins.unit());
  const auto spool = fmt::suitable_formats(sf);
  EXPECT_EQ(std::count(spool.begin(), spool.end(), fmt::FormatKind::Coo), 1);
}

// --- PlanLayouts (lazy amortized cache) -----------------------------------

TEST(PlanLayoutsCache, DefersUntilReuseAmortizesThenBuildsOnce) {
  const auto a = gen::fixed_degree<float>(300, 300, 4, 67);
  const auto bins = binning::bin_matrix(a, 30);
  const int b = bins.occupied_bins().front();
  fmt::PlanLayouts<float> layouts({.min_reuse = 3});

  // Below the threshold: acquire defers (returns null), counting deferrals.
  EXPECT_EQ(layouts.note_run(a), 1u);
  EXPECT_EQ(layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                            bins.unit(), fmt::FormatKind::Ell, b),
            nullptr);
  EXPECT_EQ(layouts.note_run(a), 2u);
  EXPECT_EQ(layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                            bins.unit(), fmt::FormatKind::Ell, b),
            nullptr);
  EXPECT_EQ(layouts.stats().builds, 0u);
  EXPECT_EQ(layouts.stats().deferrals, 2u);

  // At the threshold: built exactly once, then served from cache.
  EXPECT_EQ(layouts.note_run(a), 3u);
  const auto first = layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                                     bins.unit(), fmt::FormatKind::Ell, b);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->kind, fmt::FormatKind::Ell);
  const auto second = layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                                      bins.unit(), fmt::FormatKind::Ell, b);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(layouts.stats().builds, 1u);
  EXPECT_GE(layouts.stats().hits, 1u);

  // CSR never materializes, eager policy builds on first touch.
  EXPECT_EQ(layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                            bins.unit(), fmt::FormatKind::Csr, b),
            nullptr);
  fmt::PlanLayouts<float> eager({.eager = true});
  EXPECT_NE(eager.acquire(a, std::span<const index_t>(bins.bin(b)),
                          bins.unit(), fmt::FormatKind::Coo, b),
            nullptr);
}

TEST(PlanLayoutsCache, FailedBuildsAreNegativelyCached) {
  // One long row amid short ones: the ELL builder rejects the bin; the
  // cache must attempt the build exactly once and remember the failure.
  auto rows = std::vector<std::vector<std::pair<index_t, float>>>(200);
  for (index_t c = 0; c < 200; ++c) rows[0].push_back({c, 1.0f});
  for (std::size_t r = 1; r < 200; ++r)
    rows[r].push_back({static_cast<index_t>(r), 1.0f});
  const auto a = make_csr(200, rows);
  const auto bins = binning::bin_matrix(a, a.rows());
  const int b = bins.occupied_bins().front();
  fmt::PlanLayouts<float> layouts({.eager = true});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(layouts.acquire(a, std::span<const index_t>(bins.bin(b)),
                              bins.unit(), fmt::FormatKind::Ell, b),
              nullptr);
  }
  EXPECT_EQ(layouts.stats().build_failures, 1u);
  EXPECT_EQ(layouts.stats().builds, 0u);
}

TEST(PlanLayoutsCache, DistinctInstancesNeverAliasEvenWithEqualStructure) {
  // Regression: slots used to key by the values-buffer address, so a freed
  // matrix's allocation handed to a later same-shape matrix aliased the
  // dead instance's slot and silently served a layout embedding the OLD
  // values. Slots now key by CsrMatrix::instance_id(), which is never
  // recycled, so distinct instances — same structure, possibly the same
  // reused buffer address — are provably disjoint.
  const auto a = gen::fixed_degree<float>(300, 300, 4, 67);
  auto b = a;  // identical structure, distinct instance; diverge the values
  for (auto& v : b.vals_mutable()) v *= 2.0f;
  const auto bins = binning::bin_matrix(a, 30);
  const int bin = bins.occupied_bins().front();
  const auto vspan = std::span<const index_t>(bins.bin(bin));

  fmt::PlanLayouts<float> layouts({.min_reuse = 2});
  EXPECT_EQ(layouts.note_run(a), 1u);
  EXPECT_EQ(layouts.note_run(a), 2u);
  const auto la =
      layouts.acquire(a, vspan, bins.unit(), fmt::FormatKind::Ell, bin);
  ASSERT_NE(la, nullptr);

  // b must not inherit a's reuse count, and before it amortizes acquire()
  // must defer — never hand back a's layout.
  EXPECT_EQ(layouts.note_run(b), 1u);
  EXPECT_EQ(layouts.acquire(b, vspan, bins.unit(), fmt::FormatKind::Ell, bin),
            nullptr);
  EXPECT_EQ(layouts.note_run(b), 2u);
  const auto lb =
      layouts.acquire(b, vspan, bins.unit(), fmt::FormatKind::Ell, bin);
  ASSERT_NE(lb, nullptr);
  EXPECT_NE(lb.get(), la.get());
  // The second build embeds b's values, not a's.
  ASSERT_EQ(la->ell.val.size(), lb->ell.val.size());
  for (std::size_t i = 0; i < la->ell.val.size(); ++i)
    ASSERT_FLOAT_EQ(lb->ell.val[i], 2.0f * la->ell.val[i]) << "entry " << i;
  EXPECT_EQ(layouts.stats().builds, 2u);

  // In-place mutation re-issues the instance id, so the now-stale layout
  // is unreachable through the mutated matrix too (fresh slot, deferred).
  for (auto& v : b.vals_mutable()) v += 1.0f;
  EXPECT_EQ(layouts.acquire(b, vspan, bins.unit(), fmt::FormatKind::Ell, bin),
            nullptr);
}

// --- end-to-end through the tuner -----------------------------------------

TEST(AutoFormats, NativeAutoPlanStampsFormatsAndStaysExact) {
  const auto a = gen::fixed_degree<double>(2000, 2000, 6, 71);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a)
                        .predictor(pred)
                        .backend(exec::BackendKind::Native)
                        .formats(fmt::FormatMode::Auto)
                        .build();
  // Near-uniform short rows: the estimator stamps ELL somewhere.
  EXPECT_TRUE(spmv.plan().uses_formats());
  ASSERT_NE(spmv.layouts(), nullptr);

  const auto x =
      random_vector<double>(static_cast<std::size_t>(a.cols()), 73);
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  // Across the amortization threshold: early runs execute from CSR, later
  // ones through materialized layouts — all must agree with exact.
  for (int run = 0; run < 6; ++run) {
    spmv.run(std::span<const double>(x), std::span<double>(y));
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0))
          << "run " << run << " row " << i;
  }
  EXPECT_GE(spmv.layouts()->stats().builds, 1u);
  EXPECT_GE(spmv.layouts()->stats().deferrals, 1u);
}

TEST(AutoFormats, ClsimModeNeverStampsFormats) {
  // The clsim backend is format-blind; Auto mode on it must leave every
  // bin CSR (so the differential suite's reference side stays pure CSR).
  const auto a = gen::fixed_degree<float>(1000, 1000, 5, 79);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a)
                        .predictor(pred)
                        .formats(fmt::FormatMode::Auto)
                        .build();
  EXPECT_FALSE(spmv.plan().uses_formats());
  EXPECT_EQ(spmv.layouts(), nullptr);
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 83);
  const auto exact = kernels::spmv_exact(a, std::span<const float>(x));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(std::span<const float>(x), std::span<float>(y));
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], exact[i], 2e-4 * (std::abs(exact[i]) + 1.0));
}

TEST(AutoFormats, ForcedFormatsOnClsimPlanFallBackToCsr) {
  // A plan hand-stamped with non-CSR formats but executed on a
  // format-blind backend: execute_plan must take the CSR path (formats are
  // an acceleration, never a requirement) and stay exact.
  const auto a = gen::fixed_degree<float>(800, 800, 4, 89);
  core::HeuristicPredictor pred;
  auto spmv = core::Tuner(a).predictor(pred).build();
  core::Plan plan = spmv.plan();
  for (auto& bp : plan.bin_kernels) bp.format = fmt::FormatKind::Ell;
  fmt::PlanLayouts<float> layouts({.eager = true});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 97);
  const auto exact = kernels::spmv_exact(a, std::span<const float>(x));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const auto backend = exec::shared_backend(exec::BackendKind::Clsim);
  core::execute_plan(*backend, a, std::span<const float>(x),
                     std::span<float>(y), spmv.bins(), plan, &layouts);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], exact[i], 2e-4 * (std::abs(exact[i]) + 1.0));
  // The format-blind path never touched the layout cache.
  EXPECT_EQ(layouts.stats().builds, 0u);
}

TEST(AutoFormats, BatchedExecutePlanWithLayoutsMatchesExact) {
  const auto a = gen::fixed_degree<float>(900, 900, 5, 101);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a)
                        .predictor(pred)
                        .backend(exec::BackendKind::Native)
                        .formats(fmt::FormatMode::Auto)
                        .format_policy({.eager = true})
                        .build();
  ASSERT_TRUE(spmv.plan().uses_formats());
  constexpr int kBatch = 4;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const auto x = random_vector<float>(n * kBatch, 103);
  std::vector<float> y(m * kBatch);
  spmv.run_batch(std::span<const float>(x), std::span<float>(y), kBatch);
  for (int col = 0; col < kBatch; ++col) {
    const auto exact = kernels::spmv_exact(
        a, std::span<const float>(x).subspan(
               static_cast<std::size_t>(col) * n, n));
    for (std::size_t i = 0; i < m; ++i)
      ASSERT_NEAR(y[static_cast<std::size_t>(col) * m + i], exact[i],
                  2e-4 * (std::abs(exact[i]) + 1.0))
          << "col " << col << " row " << i;
  }
  EXPECT_GE(spmv.layouts()->stats().builds, 1u);
}

}  // namespace

// Tests for the serving layer: fingerprints, the plan cache (hits, misses,
// LRU eviction, shared planning passes), batched execution, the SpmvService
// end to end, and a multi-threaded stress run. The suite is part of the
// tsan preset's coverage: the stress test hammers the cache and executor
// from many client threads at once.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>

#include "adapt/plan_store.hpp"
#include "core/predictor.hpp"
#include "core/tuner.hpp"
#include "exec/backend.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "kernels/registry.hpp"
#include "prof/profile.hpp"
#include "serve/fingerprint.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using namespace spmv::serve;

template <typename T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

template <typename T>
void expect_matches_exact(const CsrMatrix<T>& a, std::span<const T> x,
                          std::span<const T> y, double tol) {
  const auto exact = kernels::spmv_exact(a, x);
  ASSERT_EQ(y.size(), exact.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i],
                tol * (std::abs(exact[i]) + 1.0))
        << "row " << i;
  }
}

/// Predictor wrapper that counts prediction passes — used to prove that
/// concurrent cache misses on one fingerprint share a single planning pass.
class CountingPredictor : public core::Predictor {
 public:
  explicit CountingPredictor(const core::Predictor& inner) : inner_(inner) {}

  [[nodiscard]] UnitChoice predict_unit(const RowStats& stats) const override {
    unit_calls.fetch_add(1, std::memory_order_relaxed);
    return inner_.predict_unit(stats);
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const override {
    return inner_.predict_kernel(stats, unit, bin_id);
  }

  mutable std::atomic<int> unit_calls{0};

 private:
  const core::Predictor& inner_;
};

// --- Fingerprints ---------------------------------------------------------

TEST(Fingerprint, EqualStructureEqualFingerprint) {
  const auto a = gen::power_law<float>(1200, 1200, 2.0, 150, 5);
  auto b = a;  // identical structure, then change values only
  for (auto& v : b.vals_mutable()) v *= 2.0f;
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
  EXPECT_EQ(FingerprintHash{}(fingerprint_of(a)),
            FingerprintHash{}(fingerprint_of(b)));
}

TEST(Fingerprint, DistinguishesStructures) {
  const auto a = gen::diagonal<float>(1000);
  const auto b = gen::diagonal<float>(1001);             // dims differ
  const auto c = gen::fixed_degree<float>(1000, 1000, 3, 9);  // nnz differs
  EXPECT_FALSE(fingerprint_of(a) == fingerprint_of(b));
  EXPECT_FALSE(fingerprint_of(a) == fingerprint_of(c));
}

TEST(Fingerprint, RowHashSeesRowLengthRedistribution) {
  // Same dims and nnz, different row-length layout: only row_hash differs.
  std::vector<offset_t> even{0, 2, 4, 6, 8};
  std::vector<offset_t> skew{0, 5, 6, 7, 8};
  const auto fe = fingerprint_csr(4, 8, 8, even);
  const auto fs = fingerprint_csr(4, 8, 8, skew);
  EXPECT_EQ(fe.rows, fs.rows);
  EXPECT_EQ(fe.nnz, fs.nnz);
  EXPECT_NE(fe.row_hash, fs.row_hash);
}

TEST(Fingerprint, LargeMatrixSamplingIsDeterministic) {
  const auto a = gen::fixed_degree<float>(50000, 1000, 2, 3);
  ASSERT_GT(a.row_ptr().size(), kMaxHashedEntries);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(a));
}

// --- PlanCache ------------------------------------------------------------

TEST(PlanCache, HitMissEvictCounters) {
  core::HeuristicPredictor pred;
  PlanCache<float> cache(pred, clsim::default_engine(), 2);

  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::diagonal<float>(500));
  auto b = std::make_shared<const CsrMatrix<float>>(
      gen::fixed_degree<float>(400, 400, 3, 6));
  auto c = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(600, 600, 2.0, 100, 7));

  EXPECT_NE(cache.get(a), nullptr);  // miss
  EXPECT_NE(cache.get(a), nullptr);  // hit
  EXPECT_NE(cache.get(b), nullptr);  // miss (cache now full)
  EXPECT_NE(cache.get(c), nullptr);  // miss, evicts LRU (a)
  EXPECT_NE(cache.get(b), nullptr);  // hit: b survived the eviction
  EXPECT_NE(cache.get(a), nullptr);  // miss again: a was evicted

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, SameStructureSharesOneEntry) {
  core::HeuristicPredictor pred;
  PlanCache<float> cache(pred, clsim::default_engine(), 4);
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::banded<float>(800, 3, 0.8, 11));
  auto b = std::make_shared<const CsrMatrix<float>>(*a);  // distinct object
  const auto ea = cache.get(a);
  const auto eb = cache.get(b);
  EXPECT_EQ(ea, eb);  // one entry serves both
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, ConcurrentMissesShareOnePlanningPass) {
  core::HeuristicPredictor heuristic;
  CountingPredictor pred(heuristic);
  PlanCache<double> cache(pred, clsim::default_engine(), 4);
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::power_law<double>(3000, 3000, 2.0, 300, 13));

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const PlanCache<double>::Entry>> got(kThreads);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] { got[static_cast<std::size_t>(i)] = cache.get(a); });
  for (auto& t : threads) t.join();

  for (int i = 1; i < kThreads; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], got[0]);
  // The whole stampede planned exactly once.
  EXPECT_EQ(pred.unit_calls.load(), 1);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(PlanCache, ZeroCapacityThrows) {
  core::HeuristicPredictor pred;
  EXPECT_THROW(PlanCache<float>(pred, clsim::default_engine(), 0),
               std::invalid_argument);
}

// --- Batched execution ----------------------------------------------------

TEST(BatchedRun, NativeSerialBatchMatchesReference) {
  const auto a = gen::power_law<double>(1500, 1500, 2.0, 200, 17);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a).predictor(pred).build();

  constexpr int kBatch = 4;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const auto xs = random_vector<double>(n * kBatch, 19);
  std::vector<double> ys(m * kBatch);
  spmv.run_batch(xs, std::span<double>(ys), kBatch);

  for (int b = 0; b < kBatch; ++b) {
    expect_matches_exact<double>(
        a, std::span<const double>(xs).subspan(static_cast<std::size_t>(b) * n, n),
        std::span<const double>(ys).subspan(static_cast<std::size_t>(b) * m, m),
        1e-9);
  }
}

TEST(BatchedRun, NativeSubvectorBatchMatchesReference) {
  // Force subvector plans across widths; the batch path dispatches the
  // native staged kernel (sliced by the local-memory limit) and must stay
  // exact, including at widths beyond one native launch.
  const auto a = gen::fem_blocks<double>(120, 16, 90, 0.4, 23);
  for (const auto id : {kernels::KernelId::Sub2, kernels::KernelId::Sub16,
                        kernels::KernelId::Sub128}) {
    core::Plan plan;
    plan.unit = 16;
    const auto bins = binning::bin_matrix(a, 16);
    for (int b : bins.occupied_bins()) plan.bin_kernels.push_back({b, id});
    const auto spmv = core::Tuner(a).plan(plan).build();

    constexpr int kBatch = 15;  // > the double/Sub2 per-launch limit
    const auto n = static_cast<std::size_t>(a.cols());
    const auto m = static_cast<std::size_t>(a.rows());
    const auto xs = random_vector<double>(n * kBatch, 29);
    std::vector<double> ys(m * kBatch);
    spmv.run_batch(xs, std::span<double>(ys), kBatch);
    for (int b = 0; b < kBatch; ++b) {
      expect_matches_exact<double>(
          a,
          std::span<const double>(xs).subspan(static_cast<std::size_t>(b) * n,
                                              n),
          std::span<const double>(ys).subspan(static_cast<std::size_t>(b) * m,
                                              m),
          1e-9);
    }
  }
}

TEST(BatchedRun, FallbackKernelsMatchReference) {
  // Force a plan whose kernel has no native batched variant (Vector): the
  // batch path must loop per column and still be exact.
  const auto a = gen::fem_blocks<float>(120, 16, 90, 0.4, 23);
  core::Plan plan;
  plan.unit = 16;
  const auto bins = binning::bin_matrix(a, 16);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Vector});
  const auto spmv = core::Tuner(a).plan(plan).build();

  constexpr int kBatch = 3;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const auto xs = random_vector<float>(n * kBatch, 29);
  std::vector<float> ys(m * kBatch);
  spmv.run_batch(xs, std::span<float>(ys), kBatch);
  for (int b = 0; b < kBatch; ++b) {
    expect_matches_exact<float>(
        a, std::span<const float>(xs).subspan(static_cast<std::size_t>(b) * n, n),
        std::span<const float>(ys).subspan(static_cast<std::size_t>(b) * m, m),
        2e-4);
  }
}

TEST(BatchedRun, BadExtentsThrow) {
  const auto a = gen::diagonal<float>(100);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a).predictor(pred).build();
  std::vector<float> xs(200), ys(100);  // ys too small for batch=2
  EXPECT_THROW(spmv.run_batch(std::span<const float>(xs),
                              std::span<float>(ys), 2),
               std::invalid_argument);
  EXPECT_THROW(spmv.run_batch(std::span<const float>(xs),
                              std::span<float>(ys), 0),
               std::invalid_argument);
}

// --- Plan normalization (external plans may arrive unsorted) --------------

TEST(Plan, NormalizeRestoresBinarySearchInvariant) {
  core::Plan plan;
  plan.bin_kernels = {{7, kernels::KernelId::Vector},
                      {0, kernels::KernelId::Serial},
                      {3, kernels::KernelId::Sub8}};
  plan.normalize();
  EXPECT_EQ(plan.bin_kernels.front().bin_id, 0);
  EXPECT_EQ(plan.bin_kernels.back().bin_id, 7);
  EXPECT_EQ(plan.kernel_for(3), kernels::KernelId::Sub8);
  EXPECT_THROW(static_cast<void>(plan.kernel_for(5)), std::out_of_range);
}

// --- SpmvService ----------------------------------------------------------

TEST(SpmvService, SingleRequestIsExact) {
  core::HeuristicPredictor pred;
  SpmvService<double> service(pred);
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::mixed_regime<double>(1000, 1000, 0.4, 0.4, 2, 30, 300, 16, 31));
  const auto x = random_vector<double>(static_cast<std::size_t>(a->cols()), 37);
  const auto y = service.run(a, x);
  expect_matches_exact<double>(*a, x, y, 1e-9);
  const auto s = service.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
}

TEST(SpmvService, BatchesCoalesceAndStayExact) {
  core::HeuristicPredictor pred;
  ServiceOptions opts;
  opts.workers = 1;  // one drainer => queued requests must coalesce
  opts.max_batch = 8;
  prof::RunProfile profile;
  opts.profile = &profile;
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(2000, 2000, 2.0, 250, 41));
  const auto n = static_cast<std::size_t>(a->cols());

  std::vector<std::vector<float>> xs;
  std::vector<std::future<std::vector<float>>> futs;
  {
    SpmvService<float> service(pred, opts);
    // Prime the cache so the worker isn't stuck planning while we enqueue.
    (void)service.run(a, random_vector<float>(n, 1));
    constexpr int kRequests = 24;
    for (int i = 0; i < kRequests; ++i)
      xs.push_back(random_vector<float>(n, 100 + static_cast<std::uint64_t>(i)));
    for (int i = 0; i < kRequests; ++i)
      futs.push_back(service.submit(a, xs[static_cast<std::size_t>(i)]));
    for (int i = 0; i < kRequests; ++i) {
      const auto y = futs[static_cast<std::size_t>(i)].get();
      expect_matches_exact<float>(*a, xs[static_cast<std::size_t>(i)], y,
                                  2e-4);
    }
  }  // destructor drains + flushes stats into `profile`

  EXPECT_EQ(profile.serve.requests, 25u);
  EXPECT_GE(profile.serve.batches, 1u);
  // With one worker and a full queue, at least one multi-vector batch
  // must have formed (25 requests in fewer than 25 batches).
  EXPECT_LT(profile.serve.batches, 25u);
  EXPECT_GE(profile.serve.batch_width_hist.size(), 2u);
  // One lookup per batch: everything after the priming miss is a hit.
  EXPECT_EQ(profile.serve.cache_misses, 1u);
  EXPECT_GT(profile.serve.cache_hit_rate(), 0.5);

  // The serve section survives a JSON round trip.
  const auto parsed =
      prof::RunProfile::from_json(prof::Json::parse(profile.to_json_text()));
  EXPECT_EQ(parsed.serve.requests, profile.serve.requests);
  EXPECT_EQ(parsed.serve.batches, profile.serve.batches);
  EXPECT_EQ(parsed.serve.batch_width_hist, profile.serve.batch_width_hist);
}

TEST(SpmvService, StructurallyEqualMatricesWithDifferentValuesStayExact) {
  // The cache key ignores values: the service must still compute with each
  // request's own values.
  core::HeuristicPredictor pred;
  SpmvService<double> service(pred);
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::banded<double>(900, 4, 0.7, 43));
  auto scaled = *a;
  for (auto& v : scaled.vals_mutable()) v *= -3.0;
  auto b = std::make_shared<const CsrMatrix<double>>(std::move(scaled));

  const auto x = random_vector<double>(static_cast<std::size_t>(a->cols()), 47);
  expect_matches_exact<double>(*a, x, service.run(a, x), 1e-9);
  expect_matches_exact<double>(*b, x, service.run(b, x), 1e-9);
  const auto s = service.stats();
  EXPECT_EQ(s.cache_misses, 1u);  // one structure, one planning pass
  EXPECT_EQ(s.cache_hits, 1u);
}

TEST(SpmvService, WarmStartFromNativeBackendPlanExecutesExactly) {
  // A store written by a native-tuned process: the service warm-starts
  // from it, the rebuilt runtime carries the native backend (backend is a
  // plan property, not a service property — ServiceOptions::backend only
  // stamps fresh predictor-driven plans), and results stay exact.
  struct ScopedFile {
    explicit ScopedFile(std::string p) : path(std::move(p)) {
      std::remove(path.c_str());
    }
    ~ScopedFile() {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
    std::string path;
  } file("test_serve_native_store.json");

  core::HeuristicPredictor pred;
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::mixed_regime<double>(900, 900, 0.4, 0.4, 2, 30, 200, 16, 61));
  {
    adapt::PlanStore store(file.path);
    const auto tuned = core::Tuner(*a)
                           .predictor(pred)
                           .backend(exec::BackendKind::Native)
                           .build();
    adapt::StoredPlan sp;
    sp.plan = tuned.plan();
    store.put(fingerprint_of(*a), sp);
    store.flush();
  }

  adapt::PlanStore store(file.path);
  ServiceOptions opts;
  opts.plan_store = &store;  // service default backend stays clsim
  SpmvService<double> service(pred, opts);
  const auto x =
      random_vector<double>(static_cast<std::size_t>(a->cols()), 63);
  const auto y = service.run(a, x);
  expect_matches_exact<double>(*a, x, y, 1e-9);
  const auto s = service.stats();
  EXPECT_GE(s.cache_warm_hits, 1u);
  EXPECT_EQ(s.planning_passes, 0u);
  const auto entry = service.cache().get(a);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->runtime.plan().backend, exec::BackendKind::Native);
}

TEST(SpmvService, BackpressureRejectsBeyondHighWater) {
  core::HeuristicPredictor pred;
  ServiceOptions opts;
  opts.queue_high_water = 0;  // every submission bounces
  SpmvService<float> service(pred, opts);
  auto a = std::make_shared<const CsrMatrix<float>>(gen::diagonal<float>(100));
  EXPECT_THROW(
      static_cast<void>(service.submit(a, std::vector<float>(100, 1.0f))),
      QueueFullError);
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(SpmvService, SubmitValidation) {
  core::HeuristicPredictor pred;
  SpmvService<float> service(pred);
  auto a = std::make_shared<const CsrMatrix<float>>(gen::diagonal<float>(50));
  EXPECT_THROW(static_cast<void>(
                   service.submit(nullptr, std::vector<float>(50, 1.0f))),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(service.submit(a, std::vector<float>(49, 1.0f))),
      std::invalid_argument);
  service.shutdown();
  EXPECT_THROW(
      static_cast<void>(service.submit(a, std::vector<float>(50, 1.0f))),
      std::runtime_error);
}

// N client threads x M matrices hammering the cache + executor at once;
// every result checked against the reference. Capacity below M keeps the
// eviction path hot too. (tsan preset runs this under ThreadSanitizer.)
TEST(SpmvServiceStress, ManyThreadsManyMatrices) {
  core::HeuristicPredictor pred;
  ServiceOptions opts;
  opts.cache_capacity = 3;
  opts.workers = 3;
  opts.max_batch = 4;
  opts.queue_high_water = 4096;
  SpmvService<double> service(pred, opts);

  constexpr int kMatrices = 5;
  std::vector<std::shared_ptr<const CsrMatrix<double>>> mats;
  mats.reserve(kMatrices);
  mats.push_back(std::make_shared<const CsrMatrix<double>>(
      gen::diagonal<double>(700)));
  mats.push_back(std::make_shared<const CsrMatrix<double>>(
      gen::fixed_degree<double>(600, 500, 3, 51)));
  mats.push_back(std::make_shared<const CsrMatrix<double>>(
      gen::power_law<double>(800, 800, 2.0, 120, 53)));
  mats.push_back(std::make_shared<const CsrMatrix<double>>(
      gen::banded<double>(500, 5, 0.6, 57)));
  mats.push_back(std::make_shared<const CsrMatrix<double>>(
      gen::cfd_longrow<double>(80, 60, 59)));

  constexpr int kThreads = 6;
  constexpr int kPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const auto& a = mats[static_cast<std::size_t>(
            rng.next() % static_cast<std::uint64_t>(kMatrices))];
        std::vector<double> x(static_cast<std::size_t>(a->cols()));
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        std::vector<double> y;
        try {
          y = service.run(a, x);
        } catch (const QueueFullError&) {
          continue;  // legal backpressure outcome
        }
        const auto exact = kernels::spmv_exact(*a, std::span<const double>(x));
        for (std::size_t r = 0; r < y.size(); ++r) {
          if (std::abs(y[r] - exact[r]) >
              1e-9 * (std::abs(exact[r]) + 1.0)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  const auto s = service.stats();
  EXPECT_EQ(s.requests + s.rejected,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GT(s.cache_evictions, 0u);  // capacity 3 < 5 matrices
}

}  // namespace

// spmv::iter — solver-loop serving. The randomized suites here (ctest
// label `fuzz`) are the value-mutation property tests: arbitrary
// update_values sequences must never invalidate a session's plan, bins, or
// materialized layouts (zero re-binning / planning passes, layouts
// value-refreshed instead of rebuilt), while every product stays correct
// against the exact reference for the mutated values. Deterministic tests
// cover DenseBlock, session validation, warm starts, the latency-feedback
// bandit path, SpMM provenance persistence, and the serve-layer SpMM
// request type.
//
// Seeding follows the suite protocol: SPMV_TEST_SEED overrides the base
// seed and failure messages carry the per-case seed for replay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "adapt/bandit.hpp"
#include "adapt/plan_store.hpp"
#include "binning/binning.hpp"
#include "core/exhaustive.hpp"
#include "core/plan_io.hpp"
#include "core/predictor.hpp"
#include "core/tuner.hpp"
#include "exec/backend.hpp"
#include "fmt/plan_layouts.hpp"
#include "gen/generators.hpp"
#include "iter/dense_block.hpp"
#include "iter/session.hpp"
#include "kernels/reference.hpp"
#include "serve/service.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

std::uint64_t base_seed() {
  if (const char* s = std::getenv("SPMV_TEST_SEED"); s != nullptr && *s != '\0')
    return std::strtoull(s, nullptr, 10);
  return 0x17E2A7EULL;
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string ctx(std::uint64_t base, std::uint64_t seed,
                const std::string& what) {
  return what + " (seed " + std::to_string(seed) +
         "; replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
}

/// A random square-ish CSR matrix with mixed row lengths (some empty, an
/// occasional long row) so the heuristic plan spans several bins and the
/// fmt estimator has material to stamp non-CSR layouts on.
CsrMatrix<double> random_csr(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto rows = static_cast<index_t>(16 + rng.bounded(200));
  const auto cols = static_cast<index_t>(16 + rng.bounded(200));
  CooMatrix<double> coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    index_t len = static_cast<index_t>(rng.bounded(6));
    if (rng.uniform() < 0.05)
      len = static_cast<index_t>(1 + rng.bounded(
          static_cast<std::uint64_t>(cols)));
    len = std::min(len, cols);
    for (index_t k = 0; k < len; ++k)
      coo.add(r, static_cast<index_t>(rng.bounded(
                  static_cast<std::uint64_t>(cols))),
              rng.uniform(-1.0, 1.0));
  }
  return coo_to_csr(std::move(coo));
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_close(std::span<const double> y, std::span<const double> exact,
                  const std::string& where) {
  ASSERT_EQ(y.size(), exact.size()) << where;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale = std::abs(exact[i]) + 1.0;
    ASSERT_NEAR(y[i], exact[i], 1e-9 * scale) << where << ", row " << i;
  }
}

TEST(DenseBlock, LayoutAndValidation) {
  iter::DenseBlock<float> b(5, 3, 2.0f);
  EXPECT_EQ(b.length(), 5);
  EXPECT_EQ(b.width(), 3);
  EXPECT_EQ(b.size(), 15u);
  b.column(1)[4] = 7.0f;
  EXPECT_EQ(b.data()[1 * 5 + 4], 7.0f);
  EXPECT_EQ(b.data()[0], 2.0f);
  EXPECT_THROW((void)b.column(3), std::out_of_range);
  EXPECT_THROW(iter::DenseBlock<float>(4, 0), std::invalid_argument);
  EXPECT_THROW(iter::DenseBlock<float>(-1, 2), std::invalid_argument);

  iter::DenseBlock<float> c(2, 1, 9.0f);
  swap(b, c);
  EXPECT_EQ(b.length(), 2);
  EXPECT_EQ(c.data()[1 * 5 + 4], 7.0f);
}

TEST(IterSession, ValidatesInputsAndLifecycle) {
  const auto a = std::make_shared<const CsrMatrix<double>>(
      gen::fixed_degree<double>(32, 48, 3, 7));
  const core::HeuristicPredictor pred;
  EXPECT_THROW(iter::IterativeSession<double>(nullptr, pred),
               std::invalid_argument);

  iter::IterativeSession<double> s(a, pred);
  std::vector<double> x(48), y(32);
  EXPECT_THROW(s.step(), std::logic_error);  // seed() first
  // rows != cols: the feedback loop cannot close.
  EXPECT_THROW(s.seed(std::span<const double>(x)), std::invalid_argument);
  EXPECT_THROW(s.run(std::span<const double>(x),
                     std::span<double>(y).subspan(0, 31)),
               std::invalid_argument);
  EXPECT_THROW(s.run_block(std::span<const double>(x), std::span<double>(y),
                           0),
               std::invalid_argument);
  EXPECT_THROW(s.update_values(std::span<const double>(x)),
               std::invalid_argument);  // wrong nnz count
  EXPECT_THROW(s.replace_matrix(nullptr), std::invalid_argument);

  // A well-formed run matches the reference.
  const auto xv = random_vec(48, 11);
  const auto exact = kernels::spmv_exact(*a, std::span<const double>(xv));
  s.run(std::span<const double>(xv), std::span<double>(y));
  expect_close(y, exact, "iter run");
  EXPECT_EQ(s.stats().iterations, 1u);
  EXPECT_EQ(s.stats().planning_passes, 1u);
}

/// The fuzz property: arbitrary value-mutation sequences keep the plan,
/// bins, and layouts — SessionStats must show exactly one planning pass
/// and zero structure rebinds no matter how many update_values land, and
/// every product must match the exact reference for the values in effect.
TEST(IterSession, FuzzUpdateValuesNeverInvalidatesPlanOrLayouts) {
  const std::uint64_t base = base_seed();
  constexpr int kCases = 12;
  constexpr int kMutations = 8;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t seed =
        util::SplitMix64(base + static_cast<std::uint64_t>(i)).next();
    auto a0 = std::make_shared<const CsrMatrix<double>>(random_csr(seed));
    const std::string where = ctx(base, seed, "fuzz update_values");
    util::Xoshiro256 rng(seed ^ 0xF00DULL);

    // Half the corpus runs --format auto on the native backend (layouts in
    // play, eagerly built so refreshes are observable); half stays CSR on
    // clsim.
    iter::SessionOptions opts;
    if (i % 2 == 0) {
      opts.backend = exec::BackendKind::Native;
      opts.format = fmt::FormatMode::Auto;
      opts.format_policy = {.min_reuse = 0, .eager = true};
    }
    const core::HeuristicPredictor pred;
    iter::IterativeSession<double> session(a0, pred, opts);
    const core::Plan plan0 = session.plan();

    // Reference copy whose values shadow the session's.
    CsrMatrix<double> ref = *a0;
    const auto x = random_vec(static_cast<std::size_t>(a0->cols()),
                              seed ^ 0x5EEDULL);
    std::vector<double> y(static_cast<std::size_t>(a0->rows()));
    for (int mu = 0; mu < kMutations; ++mu) {
      const auto vals = random_vec(ref.vals().size(), rng.next());
      session.update_values(std::span<const double>(vals));
      ref.update_values(std::span<const double>(vals));
      session.run(std::span<const double>(x), std::span<double>(y));
      const auto exact =
          kernels::spmv_exact(ref, std::span<const double>(x));
      expect_close(y, exact,
                   where + ", mutation " + std::to_string(mu));
      if (::testing::Test::HasFatalFailure()) return;
    }

    const iter::SessionStats st = session.stats();
    EXPECT_EQ(st.planning_passes, 1u) << where << ": mutation re-planned";
    EXPECT_EQ(st.structure_rebinds, 0u) << where << ": mutation re-binned";
    EXPECT_EQ(st.value_updates, static_cast<std::uint64_t>(kMutations))
        << where;
    // The plan survived verbatim (same unit, same kernels, same formats).
    EXPECT_EQ(session.plan().to_string(), plan0.to_string()) << where;
  }
}

/// Deterministic session-level refresh accounting: a uniform short-row
/// matrix on the native backend with --format auto materializes an ELL
/// layout (the estimator's sweet spot), so update_values must report
/// layout refreshes through SessionStats — the layouts rode along, they
/// were not dropped and rebuilt.
TEST(IterSession, UpdateValuesRefreshesMaterializedLayouts) {
  const auto a = std::make_shared<const CsrMatrix<double>>(
      gen::fixed_degree<double>(2000, 70000, 6, 2));
  const core::HeuristicPredictor pred;
  iter::SessionOptions opts;
  opts.backend = exec::BackendKind::Native;
  opts.format = fmt::FormatMode::Auto;
  opts.format_policy = {.min_reuse = 0, .eager = true};
  iter::IterativeSession<double> session(a, pred, opts);
  ASSERT_TRUE(session.plan().uses_formats())
      << "estimator no longer stamps ELL on the uniform corpus: "
      << session.plan().to_string();

  const auto x = random_vec(static_cast<std::size_t>(a->cols()), 99);
  std::vector<double> y(static_cast<std::size_t>(a->rows()));
  session.run(std::span<const double>(x), std::span<double>(y));  // builds
  session.update_values(
      std::span<const double>(random_vec(a->vals().size(), 100)));
  EXPECT_GT(session.stats().layout_refreshes, 0u)
      << "mutation did not value-refresh the materialized layouts";
  EXPECT_EQ(session.stats().planning_passes, 1u);

  // Post-refresh execution is exact for the new values.
  CsrMatrix<double> ref = *session.matrix();
  session.run(std::span<const double>(x), std::span<double>(y));
  expect_close(y, kernels::spmv_exact(ref, std::span<const double>(x)),
               "post-refresh run");
}

/// The layout-cache half of the property, asserted directly against
/// fmt::PlanLayouts: refresh_values must re-key the slot and replace the
/// payload values WITHOUT new builds — LayoutStats::builds stays flat
/// while value_refreshes counts — and post-refresh execution must be exact
/// for the new values.
TEST(IterSession, FuzzRefreshValuesReusesLayoutsWithoutRebuilds) {
  const std::uint64_t base = base_seed();
  constexpr int kCases = 12;
  const core::HeuristicPredictor pred;
  int exercised = 0;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t seed =
        util::SplitMix64(base + 7000 + static_cast<std::uint64_t>(i)).next();
    const auto a = random_csr(seed);
    const std::string where = ctx(base, seed, "fuzz refresh_values");
    const auto rt = core::Tuner(a)
                        .predictor(pred)
                        .backend(exec::BackendKind::Native)
                        .formats(fmt::FormatMode::Auto)
                        .format_policy({.min_reuse = 0, .eager = true})
                        .build();
    if (rt.layouts() == nullptr) continue;  // all-CSR plan: nothing to test
    const auto x = random_vec(static_cast<std::size_t>(a.cols()),
                              seed ^ 0xABCDULL);
    std::vector<double> y(static_cast<std::size_t>(a.rows()));
    rt.run(std::span<const double>(x), std::span<double>(y));  // builds
    const fmt::LayoutStats before = rt.layouts()->stats();
    if (before.builds == 0) continue;  // estimator kept everything CSR
    exercised += 1;

    CsrMatrix<double> mutated = a;
    const auto vals = random_vec(a.vals().size(), seed ^ 0x600DULL);
    mutated.update_values(std::span<const double>(vals));
    const std::uint64_t refreshed =
        rt.layouts()->refresh_values(mutated, a.instance_id());
    EXPECT_GT(refreshed, 0u) << where;

    core::execute_plan(rt.backend(), mutated, std::span<const double>(x),
                       std::span<double>(y), rt.bins(), rt.plan(), nullptr,
                       rt.layouts());
    const auto exact =
        kernels::spmv_exact(mutated, std::span<const double>(x));
    expect_close(y, exact, where);
    const fmt::LayoutStats after = rt.layouts()->stats();
    EXPECT_EQ(after.builds, before.builds)
        << where << ": refresh triggered a rebuild";
    EXPECT_EQ(after.value_refreshes, before.value_refreshes + refreshed)
        << where;
    // A refresh against a matrix the cache has never seen is a no-op.
    EXPECT_EQ(rt.layouts()->refresh_values(mutated, a.instance_id()), 0u)
        << where << ": stale instance id still resolved";
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(exercised, 0) << "corpus never materialized a layout; the "
                             "property was vacuous (base seed "
                          << base << ")";
}

/// replace_matrix: a structurally identical replacement takes the cheap
/// value path (no rebind); a structural change forces exactly one re-bin +
/// re-plan and subsequent products follow the new structure.
TEST(IterSession, ReplaceMatrixStructuralDelta) {
  const std::uint64_t base = base_seed();
  const std::uint64_t seed = util::SplitMix64(base + 9001).next();
  auto a = std::make_shared<const CsrMatrix<double>>(random_csr(seed));
  const core::HeuristicPredictor pred;
  iter::IterativeSession<double> session(a, pred);

  // Same structure, new values: fingerprint match, no rebind.
  auto same = std::make_shared<CsrMatrix<double>>(*a);
  same->update_values(random_vec(a->vals().size(), seed ^ 1));
  session.replace_matrix(same);
  EXPECT_EQ(session.stats().structure_rebinds, 0u);
  EXPECT_EQ(session.stats().value_updates, 1u);
  EXPECT_EQ(session.stats().planning_passes, 1u);

  const auto x = random_vec(static_cast<std::size_t>(same->cols()),
                            seed ^ 2);
  std::vector<double> y(static_cast<std::size_t>(same->rows()));
  session.run(std::span<const double>(x), std::span<double>(y));
  expect_close(y, kernels::spmv_exact(*same, std::span<const double>(x)),
               ctx(base, seed, "replace same-structure"));

  // Different structure: one rebind, one extra planning pass.
  auto other =
      std::make_shared<const CsrMatrix<double>>(random_csr(seed ^ 0xD1FFULL));
  session.replace_matrix(other);
  EXPECT_EQ(session.stats().structure_rebinds, 1u);
  EXPECT_EQ(session.stats().planning_passes, 2u);
  const auto x2 = random_vec(static_cast<std::size_t>(other->cols()),
                             seed ^ 3);
  std::vector<double> y2(static_cast<std::size_t>(other->rows()));
  session.run(std::span<const double>(x2), std::span<double>(y2));
  expect_close(y2, kernels::spmv_exact(*other, std::span<const double>(x2)),
               ctx(base, seed, "replace new-structure"));
}

/// Latency-feedback tuning end to end on the bandit: alternate
/// next_variant()/feedback() with rigged wall times where exactly one
/// challenger kernel is 100x faster. The tuner must promote to it through
/// the shared min_samples + hysteresis machinery, counting l_trials /
/// l_promotions while the shadow-trial counters stay at zero — the "no
/// shadow launches" contract.
TEST(IterSession, LatencyFeedbackPromotesWithoutShadowLaunches) {
  const auto a = gen::fixed_degree<double>(4000, 4000, 16, 3);
  const serve::Fingerprint key = serve::fingerprint_of(a);
  core::Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, plan.unit);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});

  adapt::AdaptOptions opts;
  opts.min_samples = 2;
  opts.hysteresis = 1.05;
  opts.hot_bins = 2;
  opts.seed = base_seed();
  adapt::BanditTuner<double> tuner(clsim::default_engine(), opts);

  const auto nnz = static_cast<std::int64_t>(a.nnz());
  core::Plan live = plan;
  int incumbent_iters = 0;
  int challenger_iters = 0;
  for (int it = 0; it < 600; ++it) {
    const auto v = tuner.next_variant(key, live, bins, a);
    ASSERT_GE(v.bin, 0);
    (v.challenger ? challenger_iters : incumbent_iters) += 1;
    if (!v.challenger) EXPECT_EQ(v.kernel, v.incumbent);
    // Rigged reward: Sub16 is the only fast kernel on every bin.
    const double seconds =
        v.kernel == kernels::KernelId::Sub16 ? 1e-4 : 1e-2;
    auto promo = tuner.feedback(key, v, seconds, nnz);
    if (promo.has_value()) {
      EXPECT_EQ(promo->level, 1);
      EXPECT_GT(promo->plan.revision, live.revision);
      live = promo->plan;
    }
  }

  EXPECT_GT(incumbent_iters, 0);
  EXPECT_GT(challenger_iters, 0);
  const prof::AdaptStats st = tuner.stats();
  EXPECT_EQ(st.trials, 0u) << "latency path ran a shadow launch";
  EXPECT_GT(st.l_trials, 0u);
  EXPECT_GE(st.l_promotions, 1u);
  EXPECT_EQ(st.promotions, st.l_promotions);
  // Every hot bin converged to the rigged winner.
  int promoted_bins = 0;
  for (const auto& bp : live.bin_kernels)
    if (bp.kernel == kernels::KernelId::Sub16) promoted_bins += 1;
  EXPECT_GE(promoted_bins, 1);
}

/// Warm start + SpMM width provenance through the PlanStore: a promoted
/// plan stamped with the serving width round-trips plan_io and a restarted
/// session adopts it with zero planning passes.
TEST(IterSession, WarmStartAndSpmmWidthProvenance) {
  ScopedFile store_file("iter_warm_store.tmp.json");
  const auto a = std::make_shared<const CsrMatrix<double>>(
      gen::fixed_degree<double>(64, 64, 4, 5));
  const core::HeuristicPredictor pred;

  // plan_io round-trips the provenance field (0 = unset stays absent).
  core::Plan p;
  p.unit = 10;
  p.spmm_width = 8;
  const core::Plan back = core::plan_from_json(core::plan_to_json(p));
  EXPECT_EQ(back.spmm_width, 8);
  core::Plan unset;
  EXPECT_EQ(core::plan_from_json(core::plan_to_json(unset)).spmm_width, 0);
  EXPECT_NE(p.to_string().find("spmm=8"), std::string::npos);

  {
    adapt::PlanStore store(store_file.path);
    iter::SessionOptions opts;
    opts.plan_store = &store;
    iter::IterativeSession<double> first(a, pred, opts);
    EXPECT_EQ(first.stats().planning_passes, 1u);
    EXPECT_EQ(first.stats().warm_starts, 0u);
    first.flush();
  }
  {
    adapt::PlanStore store(store_file.path);
    iter::SessionOptions opts;
    opts.plan_store = &store;
    opts.spmm_width = 4;
    iter::IterativeSession<double> warmed(a, pred, opts);
    EXPECT_EQ(warmed.stats().planning_passes, 0u)
        << "restart re-ran the predictor";
    EXPECT_EQ(warmed.stats().warm_starts, 1u);
    std::vector<double> x0(64 * 4, 1.0);
    warmed.seed(std::span<const double>(x0));
    (void)warmed.step();
    EXPECT_EQ(warmed.stats().iterations, 1u);
  }
}

/// serve-layer SpMM request type: run_spmm through the service is
/// bit-identical to per-column submits against the same cached runtime.
TEST(IterSession, ServiceSpmmRequestMatchesPerColumnSubmits) {
  const std::uint64_t seed = util::SplitMix64(base_seed() + 31337).next();
  const auto a =
      std::make_shared<const CsrMatrix<float>>(convert_values<float>(
          random_csr(seed)));
  const core::HeuristicPredictor pred;
  serve::ServiceOptions opts;
  opts.workers = 2;
  serve::SpmvService<float> service(pred, opts);

  constexpr int kWidth = 5;
  const auto n = static_cast<std::size_t>(a->cols());
  const auto m = static_cast<std::size_t>(a->rows());
  std::vector<float> xb(n * kWidth);
  util::Xoshiro256 rng(seed ^ 0xB10CULL);
  for (auto& v : xb) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  EXPECT_THROW((void)service.run_spmm(a, xb, 0), std::invalid_argument);
  EXPECT_THROW((void)service.run_spmm(a, xb, 3), std::invalid_argument);

  const std::vector<float> yb = service.run_spmm(a, xb, kWidth);
  ASSERT_EQ(yb.size(), m * kWidth);
  for (int c = 0; c < kWidth; ++c) {
    const std::vector<float> col(xb.begin() + static_cast<std::ptrdiff_t>(
                                                  static_cast<std::size_t>(c) * n),
                                 xb.begin() + static_cast<std::ptrdiff_t>(
                                                  (static_cast<std::size_t>(c) + 1) * n));
    const std::vector<float> yc = service.run(a, col);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_EQ(yb[static_cast<std::size_t>(c) * m + r], yc[r])
          << "column " << c << ", row " << r << " (seed " << seed << ")";
  }
  service.shutdown();
}

}  // namespace

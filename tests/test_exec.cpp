// Tests for the spmv::exec backend seam itself: name round-trips, the
// shared-instance contract of shared_backend()/wrap_engine(), ExecContext
// validation, batch argument validation at the interface layer, numeric
// clsim-vs-native parity on a few structured matrices (the full random
// corpus lives in test_differential), and the deprecated kernels::run_*
// forwards.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "autospmv.hpp"
#include "kernels/reference.hpp"

namespace {

using namespace spmv;
using kernels::KernelId;

template <typename T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

// --- Names and registry ---------------------------------------------------

TEST(ExecNames, RoundTripAndStableStrings) {
  ASSERT_EQ(exec::all_backends().size(),
            static_cast<std::size_t>(exec::kBackendCount));
  for (auto kind : exec::all_backends()) {
    const auto name = exec::backend_name(kind);
    EXPECT_EQ(exec::backend_from_name(name), kind);
    const auto parsed = exec::try_backend_from_name(name);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    // cname points at a static string equal to the allocating name.
    EXPECT_EQ(name, exec::backend_cname(kind));
  }
  EXPECT_EQ(exec::backend_name(exec::BackendKind::Clsim), "clsim");
  EXPECT_EQ(exec::backend_name(exec::BackendKind::Native), "native");
}

TEST(ExecNames, UnknownNamesThrowOrReturnNullopt) {
  EXPECT_THROW((void)exec::backend_from_name("turbo"), std::invalid_argument);
  EXPECT_THROW((void)exec::backend_from_name(""), std::invalid_argument);
  EXPECT_FALSE(exec::try_backend_from_name("turbo").has_value());
  EXPECT_FALSE(exec::try_backend_from_name("").has_value());
  EXPECT_FALSE(exec::try_backend_from_name("Clsim").has_value());  // exact
}

// --- Shared instances -----------------------------------------------------

TEST(ExecShared, SharedBackendReturnsProcessWideSingletons) {
  for (auto kind : exec::all_backends()) {
    const auto a = exec::shared_backend(kind);
    const auto b = exec::shared_backend(kind);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get()) << exec::backend_name(kind);
    EXPECT_EQ(a->kind(), kind);
    EXPECT_STREQ(a->name(), exec::backend_cname(kind));
  }
  EXPECT_NE(exec::shared_backend(exec::BackendKind::Clsim).get(),
            exec::shared_backend(exec::BackendKind::Native).get());
}

TEST(ExecShared, WrapEngineShortCircuitsTheDefaultEngine) {
  const auto wrapped = exec::wrap_engine(clsim::default_engine());
  EXPECT_EQ(wrapped.get(),
            exec::shared_backend(exec::BackendKind::Clsim).get());
  EXPECT_EQ(wrapped->engine(), &clsim::default_engine());

  // A caller-owned engine gets its own wrapper bound to that engine.
  clsim::Engine own;
  const auto own_wrapped = exec::wrap_engine(own);
  EXPECT_NE(own_wrapped.get(), wrapped.get());
  EXPECT_EQ(own_wrapped->engine(), &own);

  // The native backend never touches clsim.
  EXPECT_EQ(exec::shared_backend(exec::BackendKind::Native)->engine(),
            nullptr);
}

TEST(ExecContext, NullBackendThrowsDefaultIsClsim) {
  EXPECT_THROW(exec::ExecContext(nullptr), std::invalid_argument);
  const exec::ExecContext ctx;
  EXPECT_EQ(ctx.kind(), exec::BackendKind::Clsim);
  EXPECT_EQ(&ctx.backend(),
            exec::shared_backend(exec::BackendKind::Clsim).get());
}

// --- Interface-layer validation -------------------------------------------

TEST(ExecValidation, BatchExtentsAndWidthChecked) {
  const auto a = gen::diagonal<float>(64);
  const auto bins = binning::bin_matrix(a, 8);
  const auto vrows = bins.bin(bins.occupied_bins().front());
  std::vector<float> x(64 * 2), y(64 * 2);
  for (auto kind : exec::all_backends()) {
    const auto backend = exec::shared_backend(kind);
    EXPECT_THROW(backend->run_binned_batch(KernelId::Serial, a,
                                           std::span<const float>(x),
                                           std::span<float>(y), 0, vrows, 8),
                 std::invalid_argument)
        << exec::backend_name(kind);
    EXPECT_THROW(backend->run_binned_batch(KernelId::Serial, a,
                                           std::span<const float>(x),
                                           std::span<float>(y), 3, vrows, 8),
                 std::invalid_argument)
        << exec::backend_name(kind);
  }
}

// --- Numeric parity -------------------------------------------------------

/// clsim and native must agree (to scalar-type tolerance against the exact
/// reference) on structured matrices; the full 200-matrix random corpus is
/// covered by test_differential.
TEST(ExecParity, BackendsAgreeOnStructuredMatrices) {
  const CsrMatrix<double> mats[] = {
      gen::fixed_degree<double>(500, 500, 3, 5),
      gen::power_law<double>(400, 400, 2.0, 60, 7),
      gen::fem_blocks<double>(40, 8, 40, 0.3, 9),
  };
  for (const auto& a : mats) {
    const auto x =
        random_vector<double>(static_cast<std::size_t>(a.cols()), 11);
    const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
    const auto bins = binning::bin_matrix(a, 32);
    for (auto kind : exec::all_backends()) {
      const auto backend = exec::shared_backend(kind);
      for (KernelId id : kernels::all_kernels()) {
        std::vector<double> y(static_cast<std::size_t>(a.rows()), -1.0);
        for (int b : bins.occupied_bins())
          backend->run_binned(id, a, std::span<const double>(x),
                              std::span<double>(y), bins.bin(b), 32);
        for (std::size_t i = 0; i < y.size(); ++i)
          ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0))
              << exec::backend_name(kind) << "/"
              << kernels::kernel_name(id) << " row " << i;
      }
    }
  }
}

// --- Deprecated forwards --------------------------------------------------

// The kernels::run_* free functions are deprecated forwards to
// exec::ClsimBackend; they must keep producing identical results for one
// release. Silence the deprecation warnings locally — using them here is
// the point of the test.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ExecDeprecatedForwards, RunFullMatchesBackend) {
  const auto a = gen::power_law<float>(300, 300, 2.0, 40, 13);
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 15);
  const auto backend = exec::shared_backend(exec::BackendKind::Clsim);
  for (KernelId id : kernels::all_kernels()) {
    std::vector<float> via_forward(static_cast<std::size_t>(a.rows()));
    std::vector<float> via_backend(static_cast<std::size_t>(a.rows()));
    kernels::run_full(id, clsim::default_engine(), a,
                      std::span<const float>(x), std::span<float>(via_forward));
    backend->run_full(id, a, std::span<const float>(x),
                      std::span<float>(via_backend));
    for (std::size_t i = 0; i < via_forward.size(); ++i)
      ASSERT_EQ(via_forward[i], via_backend[i])
          << kernels::kernel_name(id) << " row " << i;
  }
}
#pragma GCC diagnostic pop

}  // namespace

// Randomized differential testing of the kernel pool: ~200 seeded random
// matrices spanning dimensions, density, row-length skew, empty rows, and
// singleton rows, each executed through every pool kernel (full-matrix,
// binned dispatch at a random granularity, and the batched variants) and
// compared against the exact serial reference. Both scalar types run.
//
// Execution goes through the spmv::exec backend seam. SPMV_TEST_BACKEND in
// the environment selects which backend(s) the sweep targets: "clsim",
// "native", or unset/empty for both — CI runs a dedicated native leg so a
// lowering bug in either backend cannot hide behind the other.
//
// Determinism and replay: every matrix derives from a base seed
// (SPMV_TEST_SEED in the environment overrides the built-in default — CI
// runs one pass with a fixed seed and one with the run id) and every
// assertion prints the per-matrix generator seed, so any failure replays
// locally with SPMV_TEST_SEED=<base> and the reported index.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "binning/binning.hpp"
#include "core/predictor.hpp"
#include "core/tuner.hpp"
#include "exec/backend.hpp"
#include "fmt/estimate.hpp"
#include "fmt/layout.hpp"
#include "iter/session.hpp"
#include "kernels/reference.hpp"
#include "kernels/registry.hpp"
#include "prof/counters.hpp"
#include "prof/profile.hpp"
#include "shard/sharded_service.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using kernels::KernelId;

constexpr int kMatrices = 200;

std::uint64_t base_seed() {
  if (const char* s = std::getenv("SPMV_TEST_SEED"); s != nullptr && *s != '\0')
    return std::strtoull(s, nullptr, 10);
  return 0xA11CE5EEDULL;
}

/// Backends under test, from SPMV_TEST_BACKEND ("clsim", "native", or
/// unset/empty for both). An unknown name is a hard failure — a CI leg
/// that silently fell back to the default would test nothing.
std::vector<std::shared_ptr<const exec::Backend>> test_backends() {
  std::vector<std::shared_ptr<const exec::Backend>> out;
  const char* s = std::getenv("SPMV_TEST_BACKEND");
  if (s == nullptr || *s == '\0') {
    for (int k = 0; k < exec::kBackendCount; ++k)
      out.push_back(exec::shared_backend(static_cast<exec::BackendKind>(k)));
    return out;
  }
  out.push_back(exec::shared_backend(exec::backend_from_name(s)));
  return out;
}

/// SPMV_TEST_FORMAT gates the per-bin layout sweep: "csr" skips it, "auto"
/// or unset runs it. CI's fuzz leg exports SPMV_TEST_FORMAT=auto so the
/// format coverage cannot be silently disabled there; an unknown name is a
/// hard failure (format_mode_from_name throws).
bool formats_enabled() {
  const char* s = std::getenv("SPMV_TEST_FORMAT");
  if (s == nullptr || *s == '\0') return true;
  return fmt::format_mode_from_name(s) == fmt::FormatMode::Auto;
}

/// The covered actual row ids of a materialized layout (each payload
/// carries its own copy).
const std::vector<index_t>& layout_rows(const fmt::BinLayout<double>& l) {
  switch (l.kind) {
    case fmt::FormatKind::Ell:
      return l.ell.rows;
    case fmt::FormatKind::Coo:
      return l.coo.rows;
    default:
      return l.dcsr.rows;
  }
}

/// Per-matrix seed: decorrelate the base so adjacent indices do not share
/// low-bit structure.
std::uint64_t matrix_seed(std::uint64_t base, int index) {
  return util::SplitMix64(base + static_cast<std::uint64_t>(index)).next();
}

/// One random CSR matrix. The profile draw picks a row-length regime —
/// singleton rows, short-with-empties, uniform up to near-dense, or a
/// long-tail skew — and an independent draw sprinkles extra empty rows, so
/// the suite hits the boundary shapes (empty rows, rows of length 1 and
/// cols, 1xN / Nx1 matrices) that hand-picked fixtures tend to miss.
CsrMatrix<double> random_csr(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto rows = static_cast<index_t>(1 + rng.bounded(240));
  const auto cols = static_cast<index_t>(1 + rng.bounded(240));
  const int profile = static_cast<int>(rng.bounded(4));
  const double empty_p = rng.uniform() < 0.5 ? 0.0 : rng.uniform(0.0, 0.4);

  CooMatrix<double> coo(rows, cols);
  std::vector<index_t> pool(static_cast<std::size_t>(cols));
  std::iota(pool.begin(), pool.end(), index_t{0});
  for (index_t r = 0; r < rows; ++r) {
    index_t len = 0;
    if (rng.uniform() >= empty_p) {
      switch (profile) {
        case 0:  // singleton rows
          len = 1;
          break;
        case 1:  // short rows, some naturally empty
          len = static_cast<index_t>(rng.bounded(5));
          break;
        case 2:  // uniform, up to near-dense
          len = static_cast<index_t>(1 + rng.bounded(
              static_cast<std::uint64_t>(cols)));
          break;
        default:  // skew: mostly short, occasionally a very long row
          len = static_cast<index_t>(1 + rng.bounded(4));
          if (rng.uniform() < 0.05)
            len = static_cast<index_t>(
                1 + rng.bounded(static_cast<std::uint64_t>(cols)));
          break;
      }
    }
    len = std::min(len, cols);
    // Partial Fisher-Yates: `len` distinct columns per row.
    for (index_t k = 0; k < len; ++k) {
      const auto j = k + static_cast<index_t>(rng.bounded(
          static_cast<std::uint64_t>(cols - k)));
      std::swap(pool[static_cast<std::size_t>(k)],
                pool[static_cast<std::size_t>(j)]);
      coo.add(r, pool[static_cast<std::size_t>(k)], rng.uniform(-1.0, 1.0));
    }
  }
  return coo_to_csr(std::move(coo));
}

std::vector<double> random_x(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Replay hint attached to every assertion in the suite.
std::string ctx(std::uint64_t base, int index, std::uint64_t seed,
                const std::string& what) {
  return what + " (matrix " + std::to_string(index) + ", generator seed " +
         std::to_string(seed) +
         "; replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
}

/// The double-built corpus in the requested scalar type.
template <typename T>
CsrMatrix<T> as_type(const CsrMatrix<double>& ad) {
  if constexpr (std::is_same_v<T, double>)
    return ad;
  else
    return convert_values<T>(ad);
}

template <typename T>
void expect_close(std::span<const T> y, std::span<const double> exact,
                  const std::string& where) {
  const double tol = std::is_same_v<T, float> ? 2e-4 : 1e-9;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale = std::abs(exact[i]) + 1.0;
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i], tol * scale)
        << where << ", row " << i;
  }
}

/// The full differential sweep for one scalar type over one matrix and one
/// backend: every kernel full-matrix, every kernel composed from per-bin
/// launches at a random granularity, and the batched dispatch at a random
/// width.
template <typename T>
void differential_one(const exec::Backend& backend,
                      const CsrMatrix<double>& ad, std::uint64_t base,
                      int index, std::uint64_t seed) {
  const std::string bname = exec::backend_name(backend.kind()) + "/";
  const auto a = as_type<T>(ad);
  const auto xd =
      random_x(static_cast<std::size_t>(ad.cols()), seed ^ 0x9E3779B9ULL);
  const std::vector<T> x(xd.begin(), xd.end());
  const auto exact = kernels::spmv_exact(ad, std::span<const double>(xd));
  const auto m = static_cast<std::size_t>(a.rows());

  for (KernelId id : kernels::all_kernels()) {
    std::vector<T> y(m, T(-12345));
    backend.run_full(id, a, std::span<const T>(x), std::span<T>(y));
    expect_close<T>(y, exact,
                    ctx(base, index, seed,
                        bname + "full " + kernels::kernel_name(id)));
  }

  // Binned dispatch: per-bin launches must compose the full product for
  // any granularity, including units larger than the matrix.
  util::Xoshiro256 pick(seed ^ 0xB1A5ULL);
  const index_t units[] = {1, 3, 10, 37, 100, 1000, 100000};
  const index_t unit = units[pick.bounded(std::size(units))];
  const auto bins = binning::bin_matrix(a, unit);
  for (KernelId id : kernels::all_kernels()) {
    std::vector<T> y(m, T(-12345));
    for (int b : bins.occupied_bins())
      backend.run_binned(id, a, std::span<const T>(x), std::span<T>(y),
                         bins.bin(b), unit);
    expect_close<T>(y, exact,
                    ctx(base, index, seed,
                        bname + "binned U=" + std::to_string(unit) + " " +
                            kernels::kernel_name(id)));
  }

  // Batched dispatch: `batch` input vectors column-major, each column
  // checked against its own exact reference product.
  const int batch = 1 + static_cast<int>(pick.bounded(4));
  std::vector<T> xb(static_cast<std::size_t>(batch) *
                    static_cast<std::size_t>(a.cols()));
  std::vector<std::vector<double>> exact_b(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    const auto col = random_x(static_cast<std::size_t>(ad.cols()),
                              seed + 1000 + static_cast<std::uint64_t>(b));
    for (std::size_t c = 0; c < col.size(); ++c)
      xb[static_cast<std::size_t>(b) * col.size() + c] = static_cast<T>(col[c]);
    exact_b[static_cast<std::size_t>(b)] =
        kernels::spmv_exact(ad, std::span<const double>(col));
  }
  const KernelId bid =
      kernels::all_kernels()[pick.bounded(kernels::all_kernels().size())];
  std::vector<T> yb(static_cast<std::size_t>(batch) * m, T(-12345));
  for (int b : bins.occupied_bins())
    backend.run_binned_batch(bid, a, std::span<const T>(xb), std::span<T>(yb),
                             batch, bins.bin(b), unit);
  for (int b = 0; b < batch; ++b)
    expect_close<T>(
        std::span<const T>(yb).subspan(static_cast<std::size_t>(b) * m, m),
        exact_b[static_cast<std::size_t>(b)],
        ctx(base, index, seed,
            bname + "batch[" + std::to_string(b) + "/" +
                std::to_string(batch) + "] " + kernels::kernel_name(bid)));
}

TEST(Differential, RandomMatricesAllKernelsAllDispatchPaths) {
  const std::uint64_t base = base_seed();
  const auto backends = test_backends();
  std::printf("differential suite base seed: %llu, backends:",
              static_cast<unsigned long long>(base));
  for (const auto& b : backends)
    std::printf(" %s", exec::backend_cname(b->kind()));
  std::printf("\n");
  for (int i = 0; i < kMatrices; ++i) {
    const std::uint64_t seed = matrix_seed(base, i);
    const auto a = random_csr(seed);
    for (const auto& backend : backends) {
      // Alternate scalar types across the corpus; both stay covered for
      // any base seed.
      if (i % 2 == 0) {
        differential_one<double>(*backend, a, base, i, seed);
      } else {
        differential_one<float>(*backend, a, base, i, seed);
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

/// Per-bin physical layouts (spmv::fmt) against the exact reference: for
/// each random matrix, every layout the estimator deems suitable for every
/// occupied bin is materialized and executed on every format-capable
/// backend — single-vector and batched — and must reproduce the exact
/// product on the bin's covered rows while leaving the rest of y untouched
/// (the composition contract execute_plan relies on). Builder rejections
/// (std::length_error) are legitimate — the lazy layer negative-caches
/// them — but any other failure mode is a bug.
TEST(Differential, FormatLayoutsComposeExactly) {
  if (!formats_enabled()) GTEST_SKIP() << "SPMV_TEST_FORMAT=csr";
  std::vector<std::shared_ptr<const exec::Backend>> backends;
  for (const auto& b : test_backends())
    if (b->supports_formats()) backends.push_back(b);
  if (backends.empty())
    GTEST_SKIP() << "no format-capable backend selected";

  const std::uint64_t base = base_seed();
  constexpr int kFormatMatrices = 60;
  constexpr double kSentinel = -12345.0;
  for (int i = 0; i < kFormatMatrices; ++i) {
    const std::uint64_t seed = matrix_seed(base, 200000 + i);
    const auto a = random_csr(seed);
    const auto m = static_cast<std::size_t>(a.rows());
    const auto x =
        random_x(static_cast<std::size_t>(a.cols()), seed ^ 0x5EEDULL);
    const auto exact = kernels::spmv_exact(a, std::span<const double>(x));

    util::Xoshiro256 pick(seed ^ 0xF0F0ULL);
    const index_t units[] = {1, 3, 10, 37, 100, 1000};
    const index_t unit = units[pick.bounded(std::size(units))];
    const auto bins = binning::bin_matrix(a, unit);
    const int batch = 2 + static_cast<int>(pick.bounded(3));
    std::vector<double> xb(static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(a.cols()));
    std::vector<std::vector<double>> exact_b(
        static_cast<std::size_t>(batch));
    for (int b = 0; b < batch; ++b) {
      const auto col = random_x(static_cast<std::size_t>(a.cols()),
                                seed + 2000 + static_cast<std::uint64_t>(b));
      std::copy(col.begin(), col.end(),
                xb.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(b) * col.size()));
      exact_b[static_cast<std::size_t>(b)] =
          kernels::spmv_exact(a, std::span<const double>(col));
    }

    for (const auto& backend : backends) {
      const std::string bname = exec::backend_name(backend->kind()) + "/";
      for (const int b : bins.occupied_bins()) {
        const auto vspan = std::span<const index_t>(bins.bin(b));
        const auto feat = fmt::compute_bin_features(a, vspan, bins.unit());
        for (const fmt::FormatKind kind : fmt::suitable_formats(feat)) {
          if (kind == fmt::FormatKind::Csr) continue;
          fmt::BinLayout<double> layout;
          try {
            layout = fmt::build_bin_layout(a, vspan, bins.unit(), kind, b);
          } catch (const std::length_error&) {
            continue;  // unsuitable bin: the builder's documented refusal
          }
          const std::string where =
              ctx(base, 200000 + i, seed,
                  bname + "layout U=" + std::to_string(unit) + " bin " +
                      std::to_string(b) + " " + fmt::format_name(kind));
          std::vector<bool> covered(m, false);
          for (const index_t r : layout_rows(layout))
            covered[static_cast<std::size_t>(r)] = true;

          std::vector<double> y(m, kSentinel);
          backend->run_layout(a, layout, std::span<const double>(x),
                              std::span<double>(y));
          for (std::size_t r = 0; r < m; ++r) {
            if (covered[r]) {
              const double scale = std::abs(exact[r]) + 1.0;
              ASSERT_NEAR(y[r], exact[r], 1e-9 * scale)
                  << where << ", row " << r;
            } else {
              ASSERT_EQ(y[r], kSentinel)
                  << where << ", uncovered row " << r << " was touched";
            }
          }

          std::vector<double> yb(static_cast<std::size_t>(batch) * m,
                                 kSentinel);
          backend->run_layout_batch(a, layout, std::span<const double>(xb),
                                    std::span<double>(yb), batch);
          for (int bc = 0; bc < batch; ++bc) {
            const auto col =
                std::span<const double>(yb).subspan(
                    static_cast<std::size_t>(bc) * m, m);
            const auto& ex = exact_b[static_cast<std::size_t>(bc)];
            for (std::size_t r = 0; r < m; ++r) {
              if (covered[r]) {
                const double scale = std::abs(ex[r]) + 1.0;
                ASSERT_NEAR(col[r], ex[r], 1e-9 * scale)
                    << where << ", batch col " << bc << ", row " << r;
              } else {
                ASSERT_EQ(col[r], kSentinel)
                    << where << ", batch col " << bc << ", uncovered row "
                    << r << " was touched";
              }
            }
          }
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

/// Sharded serving vs unsharded execution over the randomized corpus: for
/// each matrix, a ShardedService at a random K must (a) track the exact
/// reference within kernel tolerance and (b) assemble each shard's output
/// rows BIT-identically to a standalone runtime built from that shard's own
/// sub-matrix and plan — the scatter-gather path may transport results but
/// never touch them. Runs on every selected backend; with formats enabled,
/// half the corpus also plans with --format auto so per-bin layouts ride
/// through the sharded path.
TEST(Differential, ShardedScatterGatherMatchesStandaloneShards) {
  const std::uint64_t base = base_seed();
  const auto backends = test_backends();
  const bool formats = formats_enabled();
  const core::HeuristicPredictor pred;
  constexpr int kShardMatrices = 24;
  for (int i = 0; i < kShardMatrices; ++i) {
    const std::uint64_t seed = matrix_seed(base, 300000 + i);
    const auto ad = random_csr(seed);
    const auto a = std::make_shared<const CsrMatrix<float>>(as_type<float>(ad));
    util::Xoshiro256 pick(seed ^ 0x5AA5ULL);
    const int shards = 2 + static_cast<int>(pick.bounded(3));  // 2..4
    const bool use_auto = formats && i % 2 == 1;

    const auto xd =
        random_x(static_cast<std::size_t>(ad.cols()), seed ^ 0x7E57ULL);
    const std::vector<float> x(xd.begin(), xd.end());
    const auto exact = kernels::spmv_exact(ad, std::span<const double>(xd));

    for (const auto& backend : backends) {
      if (use_auto && !backend->supports_formats()) continue;
      const std::string where =
          ctx(base, 300000 + i, seed,
              exec::backend_name(backend->kind()) + "/sharded K=" +
                  std::to_string(shards) +
                  (use_auto ? " format=auto" : " format=csr"));
      shard::ShardedOptions opts;
      opts.partition.shards = shards;
      opts.backend = backend->kind();
      opts.format = use_auto ? fmt::FormatMode::Auto : fmt::FormatMode::Csr;
      shard::ShardedService<float> service(a, pred, opts);
      const std::vector<float> y = service.run("default", x);

      ASSERT_EQ(y.size(), static_cast<std::size_t>(a->rows())) << where;
      expect_close<float>(y, exact, where);

      const auto infos = service.shard_infos();
      for (const auto& info : infos) {
        const auto& sub = *service.shards().matrices[static_cast<std::size_t>(
            info.index)];
        const auto rt = core::Tuner<float>(sub).plan(info.plan).build();
        std::vector<float> ys(static_cast<std::size_t>(sub.rows()));
        rt.run(std::span<const float>(x), std::span<float>(ys));
        for (std::size_t r = 0; r < ys.size(); ++r) {
          ASSERT_EQ(y[static_cast<std::size_t>(info.range.row_begin) + r],
                    ys[r])
              << where << ", shard " << info.index << " local row " << r
              << " not bit-identical";
        }
        if (::testing::Test::HasFatalFailure()) break;
      }
      service.shutdown();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

/// Degenerate shapes the random generator only sometimes produces get one
/// guaranteed pass each: all-empty, single row, single column.
TEST(Differential, DegenerateShapesEverySeed) {
  const std::uint64_t base = base_seed();
  const auto backends = test_backends();
  const struct {
    index_t rows, cols;
    bool empty;
  } shapes[] = {{17, 9, true}, {1, 200, false}, {200, 1, false}};
  int index = 0;
  for (const auto& sh : shapes) {
    const std::uint64_t seed = matrix_seed(base, 100000 + index);
    util::Xoshiro256 rng(seed);
    CooMatrix<double> coo(sh.rows, sh.cols);
    if (!sh.empty) {
      for (index_t r = 0; r < sh.rows; ++r)
        for (index_t c = 0; c < sh.cols; ++c)
          if (rng.uniform() < 0.3) coo.add(r, c, rng.uniform(-1.0, 1.0));
    }
    const auto a = coo_to_csr(std::move(coo));
    const auto x = random_x(static_cast<std::size_t>(a.cols()), seed);
    const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
    for (const auto& backend : backends) {
      for (KernelId id : kernels::all_kernels()) {
        std::vector<double> y(static_cast<std::size_t>(a.rows()), -12345.0);
        backend->run_full(id, a, std::span<const double>(x),
                          std::span<double>(y));
        expect_close<double>(
            y, exact,
            ctx(base, 100000 + index, seed,
                exec::backend_name(backend->kind()) + "/degenerate " +
                    kernels::kernel_name(id)));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    index += 1;
  }
}

/// The true-SpMM sweep for one scalar type over one matrix, one backend,
/// and one format mode: Y = A·X through run_spmm must be BIT-identical,
/// per output column, to `width` single-vector run() calls on the same
/// runtime (same plan, same materialized layouts) — the contract
/// core::execute_plan_spmm documents. Widths cross the native register-
/// tile width and the kMaxNativeBatch cap.
template <typename T>
void spmm_differential_one(const exec::Backend& backend,
                           const CsrMatrix<double>& ad, bool use_auto,
                           std::uint64_t base, int index,
                           std::uint64_t seed) {
  const std::string bname = exec::backend_name(backend.kind()) +
                            (use_auto ? "/auto/" : "/csr/");
  const auto a = as_type<T>(ad);
  const core::HeuristicPredictor pred;
  // Eager layouts: both paths must execute the same physical formats, so
  // the sweep never hands the amortization policy a way to diverge them.
  const auto rt = core::Tuner(a)
                      .predictor(pred)
                      .backend(backend)
                      .formats(use_auto ? fmt::FormatMode::Auto
                                        : fmt::FormatMode::Csr)
                      .format_policy({.min_reuse = 0, .eager = true})
                      .build();
  const auto m = static_cast<std::size_t>(a.rows());
  const auto n = static_cast<std::size_t>(a.cols());
  for (const int width : {1, 3, 8, 32, 64}) {
    const auto w = static_cast<std::size_t>(width);
    std::vector<T> xb(n * w);
    for (std::size_t c = 0; c < w; ++c) {
      const auto col = random_x(n, seed + 3000 + c * 17 +
                                       static_cast<std::uint64_t>(width));
      for (std::size_t j = 0; j < n; ++j)
        xb[c * n + j] = static_cast<T>(col[j]);
    }
    std::vector<T> yb(m * w, T(-12345));
    rt.run_spmm(std::span<const T>(xb), std::span<T>(yb), width);
    std::vector<T> yref(m, T(-54321));
    for (std::size_t c = 0; c < w; ++c) {
      rt.run(std::span<const T>(xb).subspan(c * n, n), std::span<T>(yref));
      for (std::size_t r = 0; r < m; ++r) {
        ASSERT_EQ(yb[c * m + r], yref[r])
            << ctx(base, index, seed,
                   bname + "spmm width=" + std::to_string(width)) +
                   ", column " + std::to_string(c) + ", row " +
                   std::to_string(r) + " not bit-identical";
      }
    }
  }
}

TEST(Differential, SpmmBitIdenticalToPerColumnRuns) {
  const std::uint64_t base = base_seed();
  const auto backends = test_backends();
  const bool formats = formats_enabled();
  constexpr int kSpmmMatrices = 40;
  for (int i = 0; i < kSpmmMatrices; ++i) {
    const std::uint64_t seed = matrix_seed(base, 400000 + i);
    const auto ad = random_csr(seed);
    for (const auto& backend : backends) {
      for (const bool use_auto : {false, true}) {
        if (use_auto && (!formats || !backend->supports_formats())) continue;
        if (i % 2 == 0)
          spmm_differential_one<double>(*backend, ad, use_auto, base,
                                        400000 + i, seed);
        else
          spmm_differential_one<float>(*backend, ad, use_auto, base,
                                       400000 + i, seed);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

/// spmm.fallback_columns regression: a backend without a blocked SpMM
/// (supports_spmm() false — clsim) must count every column it serves
/// through the per-column fallback, and the profiled execute_plan_spmm
/// must attribute exactly that delta to the run; a backend with native
/// blocked kernels (supports_spmm() true) must count nothing.
TEST(Differential, SpmmFallbackColumnsCounted) {
  const std::uint64_t base = base_seed();
  const std::uint64_t seed = matrix_seed(base, 500000);
  const auto a = random_csr(seed);
  const core::HeuristicPredictor pred;
  const prof::ScopedEnable counters_on;
  constexpr int kWidth = 4;
  const auto x = random_x(static_cast<std::size_t>(a.cols()) * kWidth,
                          seed ^ 0xFA11ULL);
  for (const auto& backend : test_backends()) {
    const std::string where =
        ctx(base, 500000, seed,
            exec::backend_name(backend->kind()) + "/spmm-fallback");
    const auto rt = core::Tuner(a).predictor(pred).backend(*backend).build();
    std::vector<double> y(static_cast<std::size_t>(a.rows()) * kWidth);
    prof::RunProfile profile;
    const std::uint64_t before = prof::spmm_fallback_columns();
    rt.run_spmm(std::span<const double>(x), std::span<double>(y), kWidth,
                &profile);
    const std::uint64_t delta = prof::spmm_fallback_columns() - before;
    if (backend->supports_spmm()) {
      EXPECT_EQ(delta, 0u) << where << ": blocked SpMM fell back";
      EXPECT_EQ(profile.spmm_fallback_columns, 0u) << where;
    } else {
      // One per-column fallback per CSR bin launch, `width` columns each.
      EXPECT_GE(delta, static_cast<std::uint64_t>(kWidth)) << where;
      EXPECT_EQ(profile.spmm_fallback_columns, delta)
          << where << ": profiled delta disagrees with the counter";
    }
  }
}

/// 200 iterations of normalized (block) power iteration through an
/// IterativeSession, bit-compared every step against a hand-rolled loop
/// that runs the per-column single-vector reference with the identical
/// normalization. The session serves width 2, so the solver loop rides the
/// true-SpMM path while the hand loop exercises the bit-identity contract
/// column by column.
TEST(Differential, PowerIterationSessionBitIdenticalToHandRolledLoop) {
  const std::uint64_t base = base_seed();
  const std::uint64_t seed = matrix_seed(base, 600000);
  util::Xoshiro256 rng(seed);
  constexpr index_t kN = 96;
  constexpr int kWidth = 2;
  constexpr int kIters = 200;
  CooMatrix<double> coo(kN, kN);
  for (index_t r = 0; r < kN; ++r) {
    coo.add(r, r, 1.0 + rng.uniform());  // dominant diagonal keeps it tame
    for (index_t c = 0; c < kN; ++c)
      if (c != r && rng.uniform() < 0.06)
        coo.add(r, c, rng.uniform(-1.0, 1.0));
  }
  const auto a =
      std::make_shared<const CsrMatrix<double>>(coo_to_csr(std::move(coo)));
  const auto n = static_cast<std::size_t>(kN);
  const core::HeuristicPredictor pred;

  for (const auto& backend : test_backends()) {
    const std::string where =
        ctx(base, 600000, seed,
            exec::backend_name(backend->kind()) + "/power-iteration");
    iter::SessionOptions sopts;
    sopts.spmm_width = kWidth;
    sopts.backend = backend->kind();
    iter::IterativeSession<double> session(a, pred, sopts);
    // The hand loop plans through the same predictor on the same backend
    // kind, so both sides execute the same plan.
    const auto rt =
        core::Tuner(*a).predictor(pred).backend(backend->kind()).build();

    std::vector<double> x0(n * kWidth);
    for (std::size_t i = 0; i < x0.size(); ++i)
      x0[i] = 1.0 + 0.001 * static_cast<double>(i % 7);
    session.seed(std::span<const double>(x0));
    std::vector<double> hx = x0;
    std::vector<double> hy(n * kWidth);

    for (int it = 0; it < kIters; ++it) {
      (void)session.step();
      const std::span<double> iterate = session.iterate();
      for (int c = 0; c < kWidth; ++c) {
        const auto off = static_cast<std::size_t>(c) * n;
        rt.run(std::span<const double>(hx).subspan(off, n),
               std::span<double>(hy).subspan(off, n));
      }
      // Identical per-column inf-norm normalization on both sides; the
      // comparison is AFTER normalizing, so drift cannot hide in scale.
      for (int c = 0; c < kWidth; ++c) {
        const auto off = static_cast<std::size_t>(c) * n;
        double snorm = 0.0;
        double hnorm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          snorm = std::max(snorm, std::abs(iterate[off + i]));
          hnorm = std::max(hnorm, std::abs(hy[off + i]));
        }
        ASSERT_NE(hnorm, 0.0) << where << ": iterate collapsed to zero";
        for (std::size_t i = 0; i < n; ++i) {
          iterate[off + i] /= snorm;
          hy[off + i] /= hnorm;
          ASSERT_EQ(iterate[off + i], hy[off + i])
              << where << ", iteration " << it << ", column " << c
              << ", row " << i << " not bit-identical";
        }
      }
      hx.swap(hy);
      if (::testing::Test::HasFatalFailure()) return;
    }
    const auto st = session.stats();
    EXPECT_EQ(st.iterations, static_cast<std::uint64_t>(kIters)) << where;
  }
}

}  // namespace

// Concurrency stress for the serving + adaptation stack, written to run
// under ThreadSanitizer (CI's tsan preset executes it via the fuzz label):
// client threads hammer one SpmvService while rigged measurement seams
// force the BanditTuner to keep promoting plans — including structurally
// different re-binned plans from U exploration — and the service restarts
// mid-test from its PlanStore. Invariants under load:
//   - every result equals the serial reference (no torn plans: a request
//     must never execute against a half-swapped plan/bins pair)
//   - the cached plan's revision is monotonically non-decreasing
//   - the restarted service warm-starts from the store (no planning pass)
//
// Seeding follows the suite protocol: SPMV_TEST_SEED overrides the base
// seed and failure messages carry it for replay.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "adapt/plan_store.hpp"
#include "gen/generators.hpp"
#include "iter/session.hpp"
#include "kernels/reference.hpp"
#include "serve/service.hpp"
#include "shard/sharded_service.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

std::uint64_t base_seed() {
  if (const char* s = std::getenv("SPMV_TEST_SEED"); s != nullptr && *s != '\0')
    return std::strtoull(s, nullptr, 10);
  return 0x57e55ULL;
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<float> random_x(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Rigged reward landscape: granularity 1000 and Sub16 dominate everything
/// else by 100x, so the bandit reliably promotes — a re-binned U switch
/// away from the predictor's unit plus per-bin kernel swaps on the rebuilt
/// plan — while the clients hammer the service. Pure functions:
/// deterministic and trivially thread-safe.
constexpr index_t kFavoredUnit = 1000;

double rigged_unit_gflops(index_t u) {
  return u == kFavoredUnit ? 100.0 : 1.0;
}

double rigged_kernel_gflops(kernels::KernelId k, int) {
  return k == kernels::KernelId::Sub16 ? 100.0 : 1.0;
}

void expect_result_exact(const std::vector<float>& y,
                         const std::vector<double>& exact,
                         const std::string& note) {
  ASSERT_EQ(y.size(), exact.size()) << note;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale = std::abs(exact[i]) + 1.0;
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i], 2e-4 * scale)
        << note << ", row " << i;
  }
}

TEST(StressServe, PromotionsUnderLoadNeverTearResults) {
  const std::uint64_t base = base_seed();
  const std::string note =
      " (replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
  ScopedFile f("stress_store.tmp.json");

  const auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(600, 600, 2.0, 80, base & 0xffff));
  const auto ad = convert_values<double>(*a);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 120;

  // Pre-compute every client's inputs and reference outputs so the hot
  // loop is pure submit/verify.
  std::vector<std::vector<std::vector<float>>> xs(kClients);
  std::vector<std::vector<std::vector<double>>> exacts(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      auto x = random_x(static_cast<std::size_t>(a->cols()),
                        util::SplitMix64(base + 1000 * c + r).next());
      const std::vector<double> xd(x.begin(), x.end());
      exacts[c].push_back(
          kernels::spmv_exact(ad, std::span<const double>(xd)));
      xs[c].push_back(std::move(x));
    }
  }

  adapt::AdaptOptions aopts;
  aopts.trial_fraction = 0.5;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  aopts.seed = base;
  aopts.measure_override = rigged_kernel_gflops;
  aopts.explore_units = true;
  aopts.unit_trial_fraction = 0.5;
  aopts.unit_min_samples = 2;
  aopts.unit_hysteresis = 1.05;
  aopts.unit_cooldown = 0;
  // Small pool: the favored unit is the predictor unit's direct grid
  // neighbor, so the hill-climbing challenger finds it within a few trials.
  aopts.unit_pool = {10, kFavoredUnit, 100000};
  aopts.measure_unit_override = rigged_unit_gflops;

  auto run_phase = [&](serve::SpmvService<float>& service, int half) {
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    // Monitor: the cached plan's revision must never go backwards, even
    // while promotions race the clients.
    std::thread monitor([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto entry = service.cache().get(a);
        const std::uint64_t rev = entry->runtime.plan().revision;
        if (rev < last) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        last = rev;
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> clients;
    const int lo = half * (kRequestsPerClient / 2);
    const int hi = lo + kRequestsPerClient / 2;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = lo; r < hi; ++r) {
          std::vector<float> y;
          try {
            y = service.run(a, xs[c][r]);
          } catch (const serve::QueueFullError&) {
            r -= 1;  // backpressure: retry the same request
            std::this_thread::yield();
            continue;
          }
          expect_result_exact(y, exacts[c][r],
                              "client " + std::to_string(c) + " request " +
                                  std::to_string(r) + note);
          if (::testing::Test::HasFatalFailure()) return;
        }
      });
    }
    for (auto& t : clients) t.join();
    stop.store(true, std::memory_order_relaxed);
    monitor.join();
    EXPECT_EQ(failures.load(), 0)
        << "plan revision went backwards under load" << note;
  };

  // Phase 1: cold start, promotions churning the whole time.
  const core::HeuristicPredictor predictor;
  prof::RunProfile profile1;
  std::uint64_t stored_revision = 0;
  {
    adapt::PlanStore store(f.path);
    serve::ServiceOptions opts;
    opts.workers = 3;
    opts.profile = &profile1;
    opts.plan_store = &store;
    opts.adapt = aopts;
    serve::SpmvService<float> service(predictor, opts);
    run_phase(service, 0);
    service.shutdown();
    const auto sp = store.lookup(serve::fingerprint_of(*a));
    ASSERT_TRUE(sp.has_value()) << note;
    stored_revision = sp->plan.revision;
    // The rigged landscape guarantees a structural U promotion: the store
    // must hold the re-binned plan with tuned-U provenance.
    EXPECT_EQ(sp->plan.unit, kFavoredUnit) << note;
    EXPECT_TRUE(sp->plan.unit_tuned) << note;
  }
  if (::testing::Test::HasFatalFailure()) return;
  std::printf("phase 1: %llu trials (%llu U), %llu promotions (%llu U)\n",
              static_cast<unsigned long long>(profile1.adapt.trials),
              static_cast<unsigned long long>(profile1.adapt.u_trials),
              static_cast<unsigned long long>(profile1.adapt.promotions),
              static_cast<unsigned long long>(profile1.adapt.u_promotions));
  EXPECT_GT(profile1.adapt.promotions, 0u)
      << "rigged rewards should force kernel promotions" << note;
  EXPECT_GT(profile1.adapt.u_promotions, 0u)
      << "rigged rewards should force a U promotion" << note;
  EXPECT_GT(profile1.serve.cache_rebin_promotions, 0u)
      << "the U promotion must reach the cache as a re-binned swap" << note;

  // Phase 2: restart mid-test from the store — warm start, then keep
  // promoting on top of the persisted revision.
  prof::RunProfile profile2;
  {
    adapt::PlanStore store(f.path);
    serve::ServiceOptions opts;
    opts.workers = 3;
    opts.profile = &profile2;
    opts.plan_store = &store;
    opts.adapt = aopts;
    serve::SpmvService<float> service(predictor, opts);
    run_phase(service, 1);
    service.shutdown();
    const auto sp = store.lookup(serve::fingerprint_of(*a));
    ASSERT_TRUE(sp.has_value()) << note;
    // Revisions stay monotonic across the restart too: the store's final
    // plan can only have moved forward from what phase 1 persisted.
    EXPECT_GE(sp->plan.revision, stored_revision) << note;
  }
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(profile2.serve.planning_passes, 0u)
      << "restart must warm-start from the plan store" << note;
  EXPECT_GT(profile2.serve.cache_warm_hits, 0u) << note;
}

// Sharded serving under the same rigged promotion landscape: multi-tenant
// clients hammer a ShardedService while every shard's bandit keeps
// promoting (kernel swaps AND structural U rebins rebuilt per shard), and
// the service restarts mid-test from its PlanStore. Invariants under load:
//   - every scatter-gathered result equals the serial reference (a request
//     must never see a half-swapped per-shard runtime)
//   - promoted plans keep their shard provenance stamps
//   - the restarted service warm-starts every shard (no planning pass)
// This is the tsan target for the concurrent multi-tenant submission path.
TEST(StressShard, MultiTenantSubmissionDuringPerShardPromotions) {
  const std::uint64_t base = base_seed();
  const std::string note =
      " (replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
  ScopedFile f("stress_shard_store.tmp.json");

  const auto a = std::make_shared<const CsrMatrix<float>>(
      gen::mixed_regime<float>(900, 900, 0.6, 0.32, 4, 24, 48, 32,
                               base & 0xffff));
  const auto ad = convert_values<double>(*a);
  constexpr int kShards = 3;
  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 60;
  const std::vector<shard::TenantSpec> tenants = {
      {"t0", 3.0}, {"t1", 1.0}, {"t2", 1.0}};

  std::vector<std::vector<std::vector<float>>> xs(kClients);
  std::vector<std::vector<std::vector<double>>> exacts(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      auto x = random_x(static_cast<std::size_t>(a->cols()),
                        util::SplitMix64(base + 5000 * c + r).next());
      const std::vector<double> xd(x.begin(), x.end());
      exacts[c].push_back(
          kernels::spmv_exact(ad, std::span<const double>(xd)));
      xs[c].push_back(std::move(x));
    }
  }

  adapt::AdaptOptions aopts;
  aopts.trial_fraction = 0.5;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  aopts.seed = base;
  aopts.measure_override = rigged_kernel_gflops;
  aopts.explore_units = true;
  aopts.unit_trial_fraction = 0.5;
  aopts.unit_min_samples = 2;
  aopts.unit_hysteresis = 1.05;
  aopts.unit_cooldown = 0;
  aopts.unit_pool = {10, kFavoredUnit, 100000};
  aopts.measure_unit_override = rigged_unit_gflops;

  auto run_phase = [&](shard::ShardedService<float>& service, int half) {
    std::vector<std::thread> clients;
    const int lo = half * (kRequestsPerClient / 2);
    const int hi = lo + kRequestsPerClient / 2;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const std::string tenant = "t" + std::to_string(c % 3);
        for (int r = lo; r < hi; ++r) {
          std::vector<float> y;
          try {
            y = service.run(tenant, xs[c][r]);
          } catch (const serve::QueueFullError&) {
            r -= 1;  // backpressure: retry the same request
            std::this_thread::yield();
            continue;
          }
          expect_result_exact(y, exacts[c][r],
                              "client " + std::to_string(c) + " request " +
                                  std::to_string(r) + note);
          if (::testing::Test::HasFatalFailure()) return;
        }
      });
    }
    for (auto& t : clients) t.join();
  };

  const core::HeuristicPredictor predictor;
  prof::RunProfile profile1;
  std::uint64_t parent = 0;
  {
    adapt::PlanStore store(f.path);
    shard::ShardedOptions opts;
    opts.partition.shards = kShards;
    opts.tenants = tenants;
    opts.workers_per_shard = 1;
    opts.plan_store = &store;
    opts.profile = &profile1;
    opts.adapt = aopts;
    shard::ShardedService<float> service(a, predictor, opts);
    parent = service.shards().parent_hash;
    run_phase(service, 0);
    service.shutdown();
    // Promotions landed and kept their provenance, in the live service and
    // in the store.
    for (const auto& info : service.shard_infos()) {
      EXPECT_EQ(info.plan.shard_index, info.index) << note;
      EXPECT_EQ(info.plan.shard_count, kShards) << note;
      EXPECT_EQ(info.plan.shard_parent, parent) << note;
    }
    for (const auto& fp : service.shards().fingerprints) {
      const auto sp = store.lookup(fp);
      ASSERT_TRUE(sp.has_value()) << note;
      EXPECT_EQ(sp->plan.shard_parent, parent) << note;
    }
  }
  if (::testing::Test::HasFatalFailure()) return;
  std::printf("sharded phase 1: %llu trials, %llu promotions\n",
              static_cast<unsigned long long>(profile1.adapt.trials),
              static_cast<unsigned long long>(profile1.adapt.promotions));
  EXPECT_GT(profile1.adapt.promotions, 0u)
      << "rigged rewards should force per-shard promotions" << note;

  prof::RunProfile profile2;
  {
    adapt::PlanStore store(f.path);
    shard::ShardedOptions opts;
    opts.partition.shards = kShards;
    opts.tenants = tenants;
    opts.workers_per_shard = 1;
    opts.plan_store = &store;
    opts.profile = &profile2;
    opts.adapt = aopts;
    shard::ShardedService<float> service(a, predictor, opts);
    run_phase(service, 1);
    service.shutdown();
  }
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(profile2.serve.planning_passes, 0u)
      << "restart must warm-start every shard from the store" << note;
  EXPECT_EQ(profile2.serve.cache_warm_hits,
            static_cast<std::uint64_t>(kShards))
      << note;
}

/// Solver-loop stress (spmv::iter): one IterativeSession with latency-
/// feedback tuning enabled, hammered concurrently by a step() power-
/// iteration thread, run() client threads, and an update_values() mutator
/// cycling between two value sets. Invariants under tsan and load:
///   - every run() result equals the reference for ONE of the two value
///     sets (each execution sees a consistent snapshot — never torn values
///     mid-swap)
///   - the step() feedback loop never yields a non-finite entry
///   - latency promotions racing the mutator never run a shadow launch
///     (adapt.trials stays 0) and never re-plan (planning_passes == 1)
///   - a restarted session over the flushed store warm-starts: zero
///     planning passes
TEST(StressIter, ConcurrentStepsRunsAndValueMutations) {
  const std::uint64_t base = base_seed();
  const std::string note =
      " (replay with SPMV_TEST_SEED=" + std::to_string(base) + ")";
  ScopedFile f("stress_iter_store.tmp.json");

  const auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(400, 400, 2.0, 60, base & 0xffff));
  const auto n = static_cast<std::size_t>(a->cols());

  // Two value sets the mutator flips between; references for both.
  std::vector<float> vals_b(a->vals().begin(), a->vals().end());
  for (auto& v : vals_b) v *= 2.0f;
  auto a_b = std::make_shared<CsrMatrix<float>>(*a);
  a_b->update_values(std::span<const float>(vals_b));
  const auto ad_a = convert_values<double>(*a);
  const auto ad_b = convert_values<double>(*a_b);

  const auto x = random_x(n, base ^ 0x17E4ULL);
  const std::vector<double> xd(x.begin(), x.end());
  const auto exact_a = kernels::spmv_exact(ad_a, std::span<const double>(xd));
  const auto exact_b = kernels::spmv_exact(ad_b, std::span<const double>(xd));

  const core::HeuristicPredictor pred;
  adapt::AdaptOptions aopts;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.02;
  aopts.hot_bins = 4;
  aopts.seed = base;

  {
    adapt::PlanStore store(f.path);
    iter::SessionOptions opts;
    opts.plan_store = &store;
    opts.adapt = aopts;
    iter::IterativeSession<float> session(a, pred, opts);

    constexpr int kSteps = 150;
    constexpr int kRunsPerClient = 150;
    constexpr int kMutations = 200;
    std::atomic<int> failures{0};

    // Power-iteration thread: the feedback loop must stay finite while
    // values and plans swap underneath it.
    std::thread stepper([&] {
      std::vector<float> x0(n, 1.0f);
      session.seed(std::span<const float>(x0));
      for (int i = 0; i < kSteps; ++i) {
        const auto it = session.step();
        float norm = 0.0f;
        for (const float v : it) norm = std::max(norm, std::abs(v));
        if (!std::isfinite(norm) || norm == 0.0f) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const auto mut = session.iterate();
        for (auto& v : mut) v /= norm;
      }
    });

    // Client threads: every result must match one of the two value sets
    // exactly (snapshot consistency — a torn matrix would match neither).
    auto client = [&] {
      std::vector<float> y(static_cast<std::size_t>(a->rows()));
      for (int i = 0; i < kRunsPerClient; ++i) {
        session.run(std::span<const float>(x), std::span<float>(y));
        bool match_a = true;
        bool match_b = true;
        for (std::size_t r = 0; r < y.size(); ++r) {
          const double v = static_cast<double>(y[r]);
          if (std::abs(v - exact_a[r]) > 2e-4 * (std::abs(exact_a[r]) + 1.0))
            match_a = false;
          if (std::abs(v - exact_b[r]) > 2e-4 * (std::abs(exact_b[r]) + 1.0))
            match_b = false;
          if (!match_a && !match_b) break;
        }
        if (!match_a && !match_b) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::thread c1(client), c2(client);

    // Mutator: flip the whole value set back and forth while everything
    // else runs.
    std::thread mutator([&] {
      for (int i = 0; i < kMutations; ++i) {
        session.update_values(
            i % 2 == 0 ? std::span<const float>(vals_b)
                       : std::span<const float>(a->vals()));
      }
    });

    stepper.join();
    c1.join();
    c2.join();
    mutator.join();
    EXPECT_EQ(failures.load(), 0) << note;

    const auto st = session.stats();
    EXPECT_EQ(st.planning_passes, 1u)
        << "value mutations must never re-plan" << note;
    EXPECT_EQ(st.structure_rebinds, 0u) << note;
    EXPECT_EQ(st.value_updates, static_cast<std::uint64_t>(kMutations))
        << note;
    EXPECT_EQ(st.iterations,
              static_cast<std::uint64_t>(kSteps + 2 * kRunsPerClient))
        << note;
    EXPECT_EQ(session.adapt_stats().trials, 0u)
        << "latency path must never shadow-launch" << note;
    session.flush();
  }

  // Restarted session over the flushed store: warm start, no predictor.
  {
    adapt::PlanStore store(f.path);
    iter::SessionOptions opts;
    opts.plan_store = &store;
    iter::IterativeSession<float> warmed(a, pred, opts);
    EXPECT_EQ(warmed.stats().planning_passes, 0u)
        << "restart must warm-start from the store" << note;
    EXPECT_EQ(warmed.stats().warm_starts, 1u) << note;
    std::vector<float> y(static_cast<std::size_t>(a->rows()));
    warmed.run(std::span<const float>(x), std::span<float>(y));
    expect_result_exact(y, exact_a, "warm-started run" + note);
  }
}

}  // namespace

// End-to-end integration tests: the full paper pipeline (train -> persist
// -> load -> predict -> execute) and a downstream application (conjugate
// gradient) built on AutoSpmv.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baseline/csr_adaptive.hpp"
#include "baseline/merge_spmv.hpp"
#include "core/auto_spmv.hpp"
#include "core/model_io.hpp"
#include "core/tuner.hpp"
#include "core/trainer.hpp"
#include "gen/generators.hpp"
#include "gen/representative.hpp"
#include "kernels/reference.hpp"
#include "sparse/convert.hpp"
#include "sparse/mm_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using namespace spmv::core;

TEST(Integration, TrainPersistPredictExecute) {
  // 1. Train a small model offline.
  TrainerOptions opts;
  opts.pools = small_pools();
  opts.tune.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.02};
  gen::CorpusOptions copts;
  copts.count = 10;
  copts.min_rows = 500;
  copts.max_rows = 2500;
  const auto model = train_model(gen::sample_corpus(copts), opts,
                                 clsim::default_engine(), nullptr);

  // 2. Persist and reload (the deployment path).
  std::stringstream ss;
  save_model(ss, model);
  ModelPredictor pred(load_model(ss));

  // 3. Auto-tune an unseen matrix and check the SpMV is exact.
  const auto a =
      gen::mixed_regime<float>(4000, 4000, 0.5, 0.3, 3, 30, 250, 32, 99);
  const auto spmv = Tuner(a).predictor(pred).build();
  util::Xoshiro256 rng(1);
  std::vector<float> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y));

  const auto exact = kernels::spmv_exact(a, std::span<const float>(x));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i],
                2e-4 * (std::abs(exact[i]) + 1.0));
  }
}

TEST(Integration, AllStrategiesAgreeOnRepresentativeMatrix) {
  // Shrink a representative matrix and check auto, CSR-Adaptive, and the
  // merge kernel all agree with the reference.
  auto info = gen::representative_catalogue()[3];  // crankseg_2-like
  info.scale = 0.05;
  const auto a = gen::make_representative<double>(info, 5);

  util::Xoshiro256 rng(2);
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));

  auto check = [&](std::span<const double> y, const char* what) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0))
          << what << " row " << i;
    }
  };

  HeuristicPredictor pred;
  const auto auto_spmv = Tuner(a).predictor(pred).build();
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  auto_spmv.run(x, std::span<double>(y));
  check(y, "auto");

  baseline::CsrAdaptive<double> adaptive(a, clsim::default_engine());
  adaptive.run(x, std::span<double>(y));
  check(y, "csr-adaptive");

  baseline::spmv_merge(a, std::span<const double>(x), std::span<double>(y));
  check(y, "merge");
}

// Conjugate gradient on a symmetric positive-definite matrix, with every
// A*p product going through AutoSpmv — the downstream-solver use case from
// the paper's introduction.
TEST(Integration, ConjugateGradientConverges) {
  const index_t n = 3000;
  // SPD matrix: strictly diagonally dominant symmetric banded matrix.
  CooMatrix<double> coo(n, n);
  util::Xoshiro256 rng(3);
  for (index_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (index_t d = 1; d <= 3; ++d) {
      if (i + d < n) {
        const double v = -rng.uniform(0.1, 1.0);
        coo.add(i, i + d, v);
        coo.add(i + d, i, v);
        off_sum += 2.0 * std::abs(v);
      }
    }
    coo.add(i, i, off_sum + 1.0 + rng.uniform());
  }
  // Symmetrize accounting: compute row sums after coalescing.
  auto a = coo_to_csr(std::move(coo));
  {
    // Ensure strict diagonal dominance post-assembly (raise the diagonal).
    auto vals = a.vals_mutable();
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    for (index_t i = 0; i < n; ++i) {
      double off = 0.0;
      std::size_t diag = SIZE_MAX;
      for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
           j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
        if (col_idx[static_cast<std::size_t>(j)] == i) {
          diag = static_cast<std::size_t>(j);
        } else {
          off += std::abs(vals[static_cast<std::size_t>(j)]);
        }
      }
      ASSERT_NE(diag, SIZE_MAX);
      vals[diag] = off + 1.0;
    }
  }

  HeuristicPredictor pred;
  const auto spmv = Tuner(a).predictor(pred).build();

  // Solve A x = b for a known x*.
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(n));
  spmv.run(x_star, std::span<double>(b));

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r = b, p = b, ap(static_cast<std::size_t>(n));
  auto dot = [](const std::vector<double>& u, const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
    return s;
  };
  double rr = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));
  int iters = 0;
  for (; iters < 500 && std::sqrt(rr) > 1e-10 * b_norm; ++iters) {
    spmv.run(p, std::span<double>(ap));
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
  }
  EXPECT_LT(iters, 500);
  double max_err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    max_err = std::max(max_err, std::abs(x[i] - x_star[i]));
  EXPECT_LT(max_err, 1e-6);
}

TEST(Integration, MatrixMarketToAutoSpmv) {
  // Write a generated matrix to Matrix Market, read it back, auto-tune it.
  const auto orig = gen::power_law<double>(800, 800, 2.0, 200, 7);
  std::stringstream ss;
  write_matrix_market(ss, csr_to_coo(orig));
  const auto a = coo_to_csr(read_matrix_market<double>(ss));
  EXPECT_EQ(a.nnz(), orig.nnz());

  util::Xoshiro256 rng(4);
  std::vector<double> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  HeuristicPredictor pred;
  const auto spmv = Tuner(a).predictor(pred).build();
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<double>(y));
  const auto exact = kernels::spmv_exact(orig, std::span<const double>(x));
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  }
}

}  // namespace

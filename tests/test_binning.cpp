// Tests for Algorithm-2 binning and the alternative schemes: bin-id
// arithmetic, coverage invariants, overflow handling.
#include <gtest/gtest.h>

#include <set>

#include "binning/binning.hpp"
#include "binning/schemes.hpp"
#include "gen/generators.hpp"
#include "sparse/convert.hpp"

namespace {

using namespace spmv;
using binning::BinSet;
using binning::kMaxBins;

// Matrix with a prescribed NNZ count per row.
CsrMatrix<double> matrix_with_lengths(const std::vector<index_t>& lengths,
                                      index_t cols) {
  CooMatrix<double> coo(static_cast<index_t>(lengths.size()), cols);
  for (std::size_t r = 0; r < lengths.size(); ++r) {
    for (index_t c = 0; c < lengths[r]; ++c)
      coo.add(static_cast<index_t>(r), c, 1.0);
  }
  return coo_to_csr(std::move(coo));
}

TEST(GranularityPool, MatchesPaperLadder) {
  const auto& pool = binning::default_granularity_pool();
  EXPECT_EQ(pool.front(), 10);
  EXPECT_EQ(pool.back(), 1000000);
  // 1-2-5 ladder over five decades: 16 values, strictly ascending.
  EXPECT_EQ(pool.size(), 16u);
  for (std::size_t i = 1; i < pool.size(); ++i)
    EXPECT_GT(pool[i], pool[i - 1]);
  EXPECT_NE(std::find(pool.begin(), pool.end(), 100), pool.end());
}

TEST(BinMatrix, PaperExampleFromSection3B) {
  // The paper's illustration: U=10, every row index k in bin 1 means its 10
  // rows hold 10..19 non-zeros total.
  std::vector<index_t> lengths(40, 0);
  for (std::size_t r = 0; r < 10; ++r) lengths[r] = 1;   // vrow 0: wl 10 -> bin 1
  for (std::size_t r = 10; r < 20; ++r) lengths[r] = 0;  // vrow 1: wl 0  -> bin 0
  for (std::size_t r = 20; r < 30; ++r) lengths[r] = 5;  // vrow 2: wl 50 -> bin 5
  for (std::size_t r = 30; r < 40; ++r) lengths[r] = 2;  // vrow 3: wl 20 -> bin 2
  const auto a = matrix_with_lengths(lengths, 8);
  const auto bins = binning::bin_matrix(a, 10);
  EXPECT_EQ(bins.unit(), 10);
  EXPECT_EQ(bins.virtual_rows(), 4);
  EXPECT_EQ(bins.bin(1), std::vector<index_t>{0});
  EXPECT_EQ(bins.bin(0), std::vector<index_t>{1});
  EXPECT_EQ(bins.bin(5), std::vector<index_t>{2});
  EXPECT_EQ(bins.bin(2), std::vector<index_t>{3});
  EXPECT_EQ(bins.occupied_bins(), (std::vector<int>{0, 1, 2, 5}));
}

TEST(BinMatrix, MotivatingExampleFindsOptimalU) {
  // Paper §III-B: 10 rows, first 5 with 1 nnz, last 5 with 9 nnz. With U=5
  // the first virtual row (workload 5 -> bin 1) and the second (workload 45
  // -> bin 9) land in different bins.
  std::vector<index_t> lengths = {1, 1, 1, 1, 1, 9, 9, 9, 9, 9};
  const auto a = matrix_with_lengths(lengths, 16);
  const auto bins = binning::bin_matrix(a, 5);
  EXPECT_EQ(bins.bin(1), std::vector<index_t>{0});
  EXPECT_EQ(bins.bin(9), std::vector<index_t>{1});
}

TEST(BinMatrix, OverflowGoesToLastBin) {
  // One row with a workload far beyond kMaxBins * U.
  std::vector<index_t> lengths = {5000, 1};
  const auto a = matrix_with_lengths(lengths, 6000);
  const auto bins = binning::bin_matrix(a, 10);
  EXPECT_EQ(bins.bin(kMaxBins - 1), std::vector<index_t>{0});
}

TEST(BinMatrix, LastVirtualRowClipped) {
  // 25 rows at U=10: 3 virtual rows, the last covering only 5 rows.
  std::vector<index_t> lengths(25, 2);
  const auto a = matrix_with_lengths(lengths, 4);
  const auto bins = binning::bin_matrix(a, 10);
  EXPECT_EQ(bins.virtual_rows(), 3);
  EXPECT_EQ(bins.stored_virtual_rows(), 3u);
  // vrows 0,1 have workload 20 -> bin 2; vrow 2 has workload 10 -> bin 1.
  EXPECT_EQ(bins.bin(2), (std::vector<index_t>{0, 1}));
  EXPECT_EQ(bins.bin(1), std::vector<index_t>{2});
  EXPECT_EQ(bins.rows_in_bin(2), 20);
  EXPECT_EQ(bins.rows_in_bin(1), 5);
}

TEST(BinMatrix, UnitOneIsFineGrained) {
  std::vector<index_t> lengths = {0, 1, 2, 3, 200};
  const auto a = matrix_with_lengths(lengths, 256);
  const auto bins = binning::bin_matrix(a, 1);
  EXPECT_EQ(bins.bin(0), std::vector<index_t>{0});
  EXPECT_EQ(bins.bin(1), std::vector<index_t>{1});
  EXPECT_EQ(bins.bin(2), std::vector<index_t>{2});
  EXPECT_EQ(bins.bin(3), std::vector<index_t>{3});
  EXPECT_EQ(bins.bin(kMaxBins - 1), std::vector<index_t>{4});  // overflow
}

TEST(BinMatrix, RejectsBadUnit) {
  const auto a = matrix_with_lengths({1, 2}, 4);
  EXPECT_THROW(binning::bin_matrix(a, 0), std::invalid_argument);
  EXPECT_THROW(binning::bin_matrix(a, -5), std::invalid_argument);
}

TEST(SingleBin, HoldsAllVirtualRows) {
  std::vector<index_t> lengths(100, 3);
  const auto a = matrix_with_lengths(lengths, 8);
  const auto bins = binning::single_bin(a, 10);
  EXPECT_EQ(bins.bin_count(), 1);
  EXPECT_EQ(bins.bin(0).size(), 10u);
  EXPECT_EQ(bins.rows_in_bin(0), 100);
}

// Property: at every granularity, each virtual row is stored exactly once
// and the per-bin workload bounds hold.
class BinCoverage : public ::testing::TestWithParam<index_t> {};

TEST_P(BinCoverage, EveryVirtualRowStoredOnceWithCorrectBin) {
  const index_t unit = GetParam();
  const auto a =
      gen::mixed_regime<double>(3000, 3000, 0.5, 0.3, 3, 40, 400, 32, 77);
  const auto bins = binning::bin_matrix(a, unit);

  std::set<index_t> seen;
  const auto row_ptr = a.row_ptr();
  for (int b = 0; b < bins.bin_count(); ++b) {
    for (index_t v : bins.bin(b)) {
      EXPECT_TRUE(seen.insert(v).second) << "virtual row stored twice";
      const auto lo = static_cast<std::size_t>(v) * static_cast<std::size_t>(unit);
      const auto hi = std::min<std::size_t>(
          lo + static_cast<std::size_t>(unit),
          static_cast<std::size_t>(a.rows()));
      const offset_t wl = row_ptr[hi] - row_ptr[lo];
      if (b < kMaxBins - 1) {
        EXPECT_GE(wl, static_cast<offset_t>(b) * unit);
        EXPECT_LT(wl, static_cast<offset_t>(b + 1) * unit);
      } else {
        EXPECT_GE(wl, static_cast<offset_t>(kMaxBins - 1) * unit);
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(bins.virtual_rows()));
}

INSTANTIATE_TEST_SUITE_P(Units, BinCoverage,
                         ::testing::Values(1, 7, 10, 100, 1000, 100000));

// --- schemes -------------------------------------------------------------

TEST(Schemes, NamesAreStable) {
  EXPECT_EQ(binning::scheme_name(binning::SchemeKind::Coarse), "coarse");
  EXPECT_EQ(binning::scheme_name(binning::SchemeKind::Fine), "fine");
  EXPECT_EQ(binning::scheme_name(binning::SchemeKind::Hybrid), "hybrid");
  EXPECT_EQ(binning::scheme_name(binning::SchemeKind::SingleBin),
            "single-bin");
}

TEST(Schemes, FineStoresEveryRow) {
  const auto a = gen::power_law<double>(2000, 2000, 2.0, 300, 5);
  const auto fine =
      binning::apply_scheme(a, binning::SchemeKind::Fine, 100);
  EXPECT_EQ(fine.stored_entries(), static_cast<std::size_t>(a.rows()));
  const auto coarse =
      binning::apply_scheme(a, binning::SchemeKind::Coarse, 100);
  // Coarse stores ~rows/U entries: the space advantage the paper claims.
  EXPECT_LT(coarse.stored_entries(), fine.stored_entries() / 10);
}

// Coverage invariant for every scheme: the union of actual rows across all
// parts/bins covers each matrix row exactly once.
class SchemeCoverage
    : public ::testing::TestWithParam<binning::SchemeKind> {};

TEST_P(SchemeCoverage, RowsCoveredExactlyOnce) {
  const auto a =
      gen::mixed_regime<double>(2500, 2500, 0.5, 0.3, 3, 40, 300, 16, 123);
  const auto binned = binning::apply_scheme(a, GetParam(), 50, 64);

  std::vector<int> cover(static_cast<std::size_t>(a.rows()), 0);
  for (const auto& part : binned.parts) {
    for (int b = 0; b < part.bin_count(); ++b) {
      for (index_t v : part.bin(b)) {
        const index_t lo = v * part.unit();
        const index_t hi = std::min<index_t>(lo + part.unit(), a.rows());
        for (index_t r = lo; r < hi; ++r) cover[static_cast<std::size_t>(r)]++;
      }
    }
  }
  for (index_t r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(cover[static_cast<std::size_t>(r)], 1) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeCoverage,
                         ::testing::Values(binning::SchemeKind::Coarse,
                                           binning::SchemeKind::Fine,
                                           binning::SchemeKind::Hybrid,
                                           binning::SchemeKind::SingleBin));

TEST(Schemes, HybridSplitsShortAndLong) {
  // 64 short rows then 64 long rows, unit 32: first two vrows all-short ->
  // fine part; last two all-long -> coarse part.
  std::vector<index_t> lengths(128, 2);
  for (std::size_t r = 64; r < 128; ++r) lengths[r] = 90;
  const auto a = matrix_with_lengths(lengths, 128);
  const auto binned =
      binning::apply_scheme(a, binning::SchemeKind::Hybrid, 32, 64);
  ASSERT_EQ(binned.parts.size(), 2u);
  const auto& fine = binned.parts[0];
  const auto& coarse = binned.parts[1];
  EXPECT_EQ(fine.unit(), 1);
  EXPECT_EQ(coarse.unit(), 32);
  EXPECT_EQ(fine.stored_virtual_rows(), 64u);    // the short rows, one by one
  EXPECT_EQ(coarse.stored_virtual_rows(), 2u);   // two long virtual rows
}

}  // namespace

// Tests for the persistent thread pool behind the clsim engine: coverage,
// chunking, nesting, exception propagation, thread limits, reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "clsim/thread_pool.hpp"

namespace {

using spmv::clsim::ThreadPool;

struct CoverCtx {
  std::vector<std::atomic<int>>* counts;
};

void cover_fn(void* vctx, std::int64_t g) {
  auto* ctx = static_cast<CoverCtx*>(vctx);
  (*ctx->counts)[static_cast<std::size_t>(g)]++;
}

TEST(ThreadPool, EveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  CoverCtx ctx{&counts};
  ThreadPool::instance().parallel_for(kN, 7, 8, &ctx, cover_fn);
  for (std::int64_t g = 0; g < kN; ++g) EXPECT_EQ(counts[g].load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeAreNoOps) {
  std::vector<std::atomic<int>> counts(1);
  counts[0].store(0);
  CoverCtx ctx{&counts};
  ThreadPool::instance().parallel_for(0, 4, 4, &ctx, cover_fn);
  ThreadPool::instance().parallel_for(-5, 4, 4, &ctx, cover_fn);
  EXPECT_EQ(counts[0].load(), 0);
}

TEST(ThreadPool, SingleThreadLimitRunsSerial) {
  constexpr std::int64_t kN = 100;
  std::set<std::thread::id> tids;
  struct TidCtx {
    std::set<std::thread::id>* tids;
  } ctx{&tids};
  // max_threads = 1: everything on the caller, so no synchronization races
  // on the (unprotected) set.
  ThreadPool::instance().parallel_for(
      kN, 4, 1, &ctx, [](void* vctx, std::int64_t) {
        static_cast<TidCtx*>(vctx)->tids->insert(std::this_thread::get_id());
      });
  EXPECT_EQ(tids.size(), 1u);
  EXPECT_EQ(*tids.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, NestedCallsDegradeToSerial) {
  constexpr std::int64_t kOuter = 64;
  constexpr std::int64_t kInner = 32;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  for (auto& c : counts) c.store(0);
  struct NestCtx {
    std::vector<std::atomic<int>>* counts;
    std::int64_t outer_g;
  };
  ThreadPool::instance().parallel_for(
      kOuter, 2, 8, &counts, [](void* vctx, std::int64_t og) {
        auto* counts = static_cast<std::vector<std::atomic<int>>*>(vctx);
        NestCtx inner{counts, og};
        ThreadPool::instance().parallel_for(
            kInner, 4, 8, &inner, [](void* victx, std::int64_t ig) {
              auto* c = static_cast<NestCtx*>(victx);
              (*c->counts)[static_cast<std::size_t>(c->outer_g * kInner + ig)]++;
            });
      });
  for (std::int64_t i = 0; i < kOuter * kInner; ++i)
    EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(ThreadPool::instance().parallel_for(
                   1000, 4, 8, nullptr,
                   [](void*, std::int64_t g) {
                     if (g == 777) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  try {
    ThreadPool::instance().parallel_for(
        100, 4, 8, nullptr,
        [](void*, std::int64_t) { throw std::logic_error("x"); });
  } catch (const std::logic_error&) {
  }
  std::atomic<std::int64_t> sum{0};
  ThreadPool::instance().parallel_for(
      100, 4, 8, &sum, [](void* vctx, std::int64_t g) {
        static_cast<std::atomic<std::int64_t>*>(vctx)->fetch_add(g);
      });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, ManyConsecutiveLaunches) {
  // Stresses the wake/join cycle (hot-spin and sleep paths both).
  std::atomic<std::int64_t> total{0};
  for (int i = 0; i < 500; ++i) {
    ThreadPool::instance().parallel_for(
        64, 4, 8, &total, [](void* vctx, std::int64_t) {
          static_cast<std::atomic<std::int64_t>*>(vctx)->fetch_add(1);
        });
  }
  EXPECT_EQ(total.load(), 500 * 64);
}

TEST(ThreadPool, LargeChunkRunsSerialFastPath) {
  // n <= chunk triggers the serial path; still processes everything.
  std::vector<std::atomic<int>> counts(8);
  for (auto& c : counts) c.store(0);
  CoverCtx ctx{&counts};
  ThreadPool::instance().parallel_for(8, 1000, 8, &ctx, cover_fn);
  for (int g = 0; g < 8; ++g) EXPECT_EQ(counts[static_cast<std::size_t>(g)].load(), 1);
}

}  // namespace

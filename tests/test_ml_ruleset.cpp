// Tests for rule-set extraction: tree-path flattening, condition merging,
// simplification, first-match classification, serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "ml/ruleset.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv::ml;

Dataset threshold_data(int n, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"neg", "pos"});
  spmv::util::Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    data.add({x, y}, x + 0.5 * y > 0.7 ? 1 : 0);
  }
  return data;
}

TEST(Condition, MatchesBothOps) {
  const Condition leq{0, Condition::Op::Leq, 5.0};
  const Condition gt{0, Condition::Op::Gt, 5.0};
  const std::vector<double> lo = {4.0}, mid = {5.0}, hi = {6.0};
  EXPECT_TRUE(leq.matches(lo));
  EXPECT_TRUE(leq.matches(mid));
  EXPECT_FALSE(leq.matches(hi));
  EXPECT_FALSE(gt.matches(mid));
  EXPECT_TRUE(gt.matches(hi));
}

TEST(Rule, ConjunctionSemantics) {
  Rule rule;
  rule.conditions = {{0, Condition::Op::Gt, 1.0}, {1, Condition::Op::Leq, 2.0}};
  EXPECT_TRUE(rule.matches(std::vector<double>{1.5, 2.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{0.5, 2.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{1.5, 3.0}));
}

TEST(RuleSet, AgreesWithTreeOnTrainingData) {
  const auto data = threshold_data(500, 1);
  DecisionTree tree;
  tree.train(data);
  const auto rules = RuleSet::from_tree(tree);
  // Rules are the tree's paths; without simplification classification can
  // only differ through rule ordering on ties, which is rare — require
  // near-perfect agreement.
  std::size_t disagree = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (rules.classify(data.features(i)) != tree.predict(data.features(i)))
      ++disagree;
  }
  EXPECT_LE(disagree, data.size() / 50);
}

TEST(RuleSet, MergesRedundantConditions) {
  // A deep path like x<=10, x<=5, x<=7 must merge to x<=5.
  const auto data = threshold_data(800, 2);
  DecisionTree tree;
  TreeParams p;
  p.pruning_cf = 1.0;  // keep the tree deep
  tree.train(data, p);
  const auto rules = RuleSet::from_tree(tree);
  for (const Rule& rule : rules.rules()) {
    // No attribute may appear twice with the same op.
    for (std::size_t i = 0; i < rule.conditions.size(); ++i) {
      for (std::size_t j = i + 1; j < rule.conditions.size(); ++j) {
        EXPECT_FALSE(rule.conditions[i].attr == rule.conditions[j].attr &&
                     rule.conditions[i].op == rule.conditions[j].op);
      }
    }
  }
}

TEST(RuleSet, SimplificationKeepsAccuracy) {
  const auto data = threshold_data(600, 3);
  DecisionTree tree;
  tree.train(data);
  const auto plain = RuleSet::from_tree(tree);
  const auto simplified = RuleSet::from_tree(tree, &data);
  EXPECT_LE(simplified.error_rate(data), plain.error_rate(data) + 0.03);
  // Simplified rules are never longer.
  std::size_t plain_conds = 0, simp_conds = 0;
  for (const auto& r : plain.rules()) plain_conds += r.conditions.size();
  for (const auto& r : simplified.rules()) simp_conds += r.conditions.size();
  EXPECT_LE(simp_conds, plain_conds);
}

TEST(RuleSet, OrderedByConfidence) {
  const auto data = threshold_data(500, 4);
  DecisionTree tree;
  tree.train(data);
  const auto rules = RuleSet::from_tree(tree);
  for (std::size_t i = 1; i < rules.rules().size(); ++i) {
    EXPECT_GE(rules.rules()[i - 1].confidence, rules.rules()[i].confidence);
  }
}

TEST(RuleSet, DefaultLabelUsedWhenNoRuleFires) {
  RuleSet rs;  // empty rule set
  EXPECT_EQ(rs.classify(std::vector<double>{1.0, 2.0}), 0);
}

TEST(RuleSet, ToStringListsRules) {
  const auto data = threshold_data(300, 5);
  DecisionTree tree;
  tree.train(data);
  const auto rules = RuleSet::from_tree(tree);
  const auto text = rules.to_string();
  EXPECT_NE(text.find("if "), std::string::npos);
  EXPECT_NE(text.find("then "), std::string::npos);
  EXPECT_NE(text.find("default:"), std::string::npos);
}

TEST(RuleSet, SaveLoadRoundTrip) {
  const auto data = threshold_data(400, 6);
  DecisionTree tree;
  tree.train(data);
  const auto rules = RuleSet::from_tree(tree, &data);
  std::stringstream ss;
  rules.save(ss);
  const auto loaded = RuleSet::load(ss);
  ASSERT_EQ(loaded.rules().size(), rules.rules().size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(loaded.classify(data.features(i)),
              rules.classify(data.features(i)));
  }
}

TEST(RuleSet, LoadRejectsGarbage) {
  std::stringstream ss("RuleSet v999\n");
  EXPECT_THROW(RuleSet::load(ss), std::runtime_error);
}

TEST(RuleSet, FromUntrainedTreeThrows) {
  DecisionTree tree;
  EXPECT_THROW(RuleSet::from_tree(tree), std::logic_error);
}

TEST(RuleSet, HoldoutErrorComparableToTree) {
  auto data = threshold_data(1200, 7);
  const auto [train, test] = data.split(0.75, 11);
  DecisionTree tree;
  tree.train(train);
  const auto rules = RuleSet::from_tree(tree, &train);
  EXPECT_LT(rules.error_rate(test), tree.error_rate(test) + 0.05);
}

}  // namespace

// Tests for the offline trainer and model persistence. Uses a tiny corpus
// and reduced pools so the exhaustive measurements stay fast; statistical
// quality of the full pipeline is evaluated by bench/train_accuracy.
#include <gtest/gtest.h>

#include <sstream>

#include "core/model_io.hpp"
#include "core/trainer.hpp"
#include "gen/generators.hpp"

namespace {

using namespace spmv;
using namespace spmv::core;

TrainerOptions fast_options() {
  TrainerOptions opts;
  opts.pools = small_pools();
  opts.tune.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.02};
  return opts;
}

std::vector<gen::CorpusSpec> tiny_corpus(int count) {
  gen::CorpusOptions copts;
  copts.count = count;
  copts.min_rows = 500;
  copts.max_rows = 3000;
  return gen::sample_corpus(copts);
}

TEST(HarvestLabels, ProducesValidClasses) {
  const auto opts = fast_options();
  const auto a = gen::mixed_regime<float>(2000, 2000, 0.5, 0.3, 3, 40, 300,
                                          32, 21);
  const auto labels = harvest_labels(clsim::default_engine(), a, opts);
  EXPECT_GE(labels.best_unit_class, 0);
  EXPECT_LT(labels.best_unit_class,
            static_cast<int>(opts.pools.units.size()) + 1);
  EXPECT_FALSE(labels.stage2.empty());
  for (const auto& s : labels.stage2) {
    EXPECT_GE(s.kernel_class, 0);
    EXPECT_LT(s.kernel_class, static_cast<int>(opts.pools.kernel_pool.size()));
    EXPECT_GE(s.bin_id, 0);
    EXPECT_LT(s.bin_id, binning::kMaxBins);
  }
  EXPECT_EQ(labels.stats.rows, 2000);
}

TEST(HarvestLabels, WinnerOnlyModeEmitsFewerSamples) {
  auto all = fast_options();
  auto winner = fast_options();
  winner.stage2_all_units = false;
  const auto a = gen::power_law<float>(1500, 1500, 2.0, 200, 22);
  const auto labels_all = harvest_labels(clsim::default_engine(), a, all);
  const auto labels_winner =
      harvest_labels(clsim::default_engine(), a, winner);
  EXPECT_LT(labels_winner.stage2.size(), labels_all.stage2.size());
  EXPECT_FALSE(labels_winner.stage2.empty());
}

TEST(Trainer, TrainsOnTinyCorpusAndReports) {
  const auto opts = fast_options();
  const auto specs = tiny_corpus(12);
  TrainReport report;
  const auto model =
      train_model(specs, opts, clsim::default_engine(), &report);

  EXPECT_EQ(report.matrices, 12u);
  EXPECT_EQ(report.stage1_train_samples + report.stage1_test_samples, 12u);
  EXPECT_GT(report.stage2_train_samples, 0u);
  EXPECT_GE(report.stage1_train_error, 0.0);
  EXPECT_LE(report.stage1_train_error, 1.0);
  EXPECT_TRUE(model.stage1.trained());
  EXPECT_TRUE(model.stage2.trained());
  EXPECT_FALSE(model.rules1.rules().empty());
}

TEST(Trainer, ModelPredictorProducesValidPlans) {
  const auto opts = fast_options();
  const auto model =
      train_model(tiny_corpus(10), opts, clsim::default_engine(), nullptr);
  ModelPredictor pred(model);

  const auto a = gen::banded<float>(4000, 5, 0.5, 23);
  const auto stats = compute_row_stats(a);
  const auto choice = pred.predict_unit(stats);
  if (!choice.single_bin) {
    EXPECT_GE(opts.pools.unit_index(choice.unit), 0);
  }
  const auto kernel = pred.predict_kernel(stats, choice.unit, 0);
  EXPECT_GE(opts.pools.kernel_index(kernel), 0);
}

TEST(Trainer, EmptyCorpusThrows) {
  EXPECT_THROW(
      train_model({}, fast_options(), clsim::default_engine(), nullptr),
      std::invalid_argument);
}

TEST(ModelIo, RoundTripPreservesPredictions) {
  const auto opts = fast_options();
  const auto model =
      train_model(tiny_corpus(10), opts, clsim::default_engine(), nullptr);

  std::stringstream ss;
  save_model(ss, model);
  const auto loaded = load_model(ss);

  EXPECT_EQ(loaded.pools.units, model.pools.units);
  EXPECT_EQ(loaded.pools.kernel_pool, model.pools.kernel_pool);
  EXPECT_EQ(loaded.use_rulesets, model.use_rulesets);

  // Predictions must agree on a grid of feature vectors.
  for (double rows : {1e3, 1e5, 1e7}) {
    for (double avg : {1.0, 20.0, 500.0}) {
      const std::vector<double> f1 = {rows, rows,      rows * avg, avg * avg,
                                      avg,  avg * 0.5, avg * 4.0};
      ASSERT_EQ(loaded.predict_unit_class(f1), model.predict_unit_class(f1));
      for (double u : {10.0, 1000.0}) {
        for (double bin : {0.0, 5.0, 99.0}) {
          auto f2 = f1;
          f2.push_back(u);
          f2.push_back(bin);
          ASSERT_EQ(loaded.predict_kernel_class(f2),
                    model.predict_kernel_class(f2));
        }
      }
    }
  }
}

TEST(ModelIo, FileHelpersRoundTrip) {
  const auto opts = fast_options();
  const auto model =
      train_model(tiny_corpus(8), opts, clsim::default_engine(), nullptr);
  const std::string path = ::testing::TempDir() + "/autospmv_model.txt";
  save_model_file(path, model);
  const auto loaded = load_model_file(path);
  EXPECT_EQ(loaded.pools.units, model.pools.units);
}

TEST(ModelIo, LoadRejectsGarbage) {
  std::stringstream ss("AutoSpmvModel v999\n");
  EXPECT_THROW(load_model(ss), std::runtime_error);
}

}  // namespace

// spmv::trace: span recording, request-id propagation, ring-buffer
// overflow accounting, Chrome trace-event export, concurrent recording
// (the tsan target), and end-to-end request correlation through the
// serving layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "autospmv.hpp"

using namespace spmv;

namespace {

/// Every test owns the global trace state: start fresh, stop on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::stop(); }
  void TearDown() override {
    trace::stop();
    trace::clear();
  }
};

/// Events recorded since the last start(), by name.
std::vector<trace::TraceEvent> events_named(const trace::Snapshot& snap,
                                            const std::string& name) {
  std::vector<trace::TraceEvent> out;
  for (const auto& ev : snap.events) {
    if (ev.name != nullptr && name == ev.name) out.push_back(ev);
  }
  return out;
}

}  // namespace

TEST_F(TraceTest, DisabledRecordsNothingAndSkipsWork) {
  trace::start();
  trace::stop();
  EXPECT_FALSE(trace::enabled());
  {
    trace::TraceSpan span("noop", "test");
    span.arg("k", 1);
  }
  trace::emit_instant("noop", "test");
  trace::emit_async_begin("noop", "test", 7);
  const auto snap = trace::snapshot();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(TraceTest, SpanRecordsNameCategoryDurationAndArgs) {
  trace::start();
  {
    trace::TraceSpan span("work", "test");
    span.arg("rows", 42);
    span.arg("unit", 100);
    span.arg("ignored", 3);  // only two slots
  }
  trace::stop();
  const auto snap = trace::snapshot();
  const auto spans = events_named(snap, "work");
  ASSERT_EQ(spans.size(), 1u);
  const auto& ev = spans[0];
  EXPECT_STREQ(ev.category, "test");
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_GT(ev.tid, 0u);
  EXPECT_STREQ(ev.arg_keys[0], "rows");
  EXPECT_EQ(ev.arg_vals[0], 42);
  EXPECT_STREQ(ev.arg_keys[1], "unit");
  EXPECT_EQ(ev.arg_vals[1], 100);
  EXPECT_EQ(ev.id, 0u);  // no request in scope
}

TEST_F(TraceTest, StartResetsClockAndPreviousEvents) {
  trace::start();
  trace::emit_instant("old", "test");
  trace::start();  // discard and re-arm
  trace::emit_instant("new", "test");
  trace::stop();
  const auto snap = trace::snapshot();
  EXPECT_TRUE(events_named(snap, "old").empty());
  EXPECT_EQ(events_named(snap, "new").size(), 1u);
}

TEST_F(TraceTest, ScopedRequestIdNestsAndRestores) {
  EXPECT_EQ(trace::current_request_id(), 0u);
  const std::uint64_t a = trace::next_request_id();
  const std::uint64_t b = trace::next_request_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  {
    trace::ScopedRequestId outer(a);
    EXPECT_EQ(trace::current_request_id(), a);
    {
      trace::ScopedRequestId inner(b);
      EXPECT_EQ(trace::current_request_id(), b);
    }
    EXPECT_EQ(trace::current_request_id(), a);
  }
  EXPECT_EQ(trace::current_request_id(), 0u);

  // Spans stamp the id in scope at construction.
  trace::start();
  {
    trace::ScopedRequestId rid(a);
    trace::TraceSpan span("tagged", "test");
  }
  trace::stop();
  const auto spans = events_named(trace::snapshot(), "tagged");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, a);
}

TEST_F(TraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  trace::start(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    trace::TraceSpan span("overflow", "test");
    span.arg("i", i);
  }
  trace::stop();
  const auto snap = trace::snapshot();
  ASSERT_EQ(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped, 12u);
  // The survivors are the newest 8, still in emit order.
  for (std::size_t i = 0; i < snap.events.size(); ++i)
    EXPECT_EQ(snap.events[i].arg_vals[0],
              static_cast<std::int64_t>(12 + i));
}

TEST_F(TraceTest, SnapshotAttributesDropsToTheThreadThatWrapped) {
  trace::start(/*per_thread_capacity=*/8);
  std::thread wrapper([] {
    for (int i = 0; i < 20; ++i) {
      trace::TraceSpan span("wrapping", "test");
      span.arg("i", i);
    }
  });
  std::thread quiet([] { trace::TraceSpan span("quiet", "test"); });
  wrapper.join();
  quiet.join();
  trace::stop();

  const auto snap = trace::snapshot();
  EXPECT_EQ(snap.dropped, 12u);
  // Only the thread that wrapped appears, carrying the whole loss — the
  // quiet thread's ring never overflowed.
  ASSERT_EQ(snap.dropped_by_thread.size(), 1u);
  EXPECT_EQ(snap.dropped_by_thread[0].dropped, 12u);
  const auto wrapped = events_named(snap, "wrapping");
  ASSERT_FALSE(wrapped.empty());
  EXPECT_EQ(snap.dropped_by_thread[0].tid, wrapped[0].tid);
  const auto quiet_spans = events_named(snap, "quiet");
  ASSERT_EQ(quiet_spans.size(), 1u);
  EXPECT_NE(quiet_spans[0].tid, snap.dropped_by_thread[0].tid);
}

TEST_F(TraceTest, ChromeJsonParsesAndPairsAsyncEvents) {
  trace::start();
  const std::uint64_t rid = trace::next_request_id();
  trace::emit_async_begin("request", "serve", rid);
  {
    trace::ScopedRequestId scope(rid);
    trace::TraceSpan span("execute", "serve");
    span.arg("width", 4);
  }
  trace::emit_async_end("request", "serve", rid);
  trace::stop();

  const auto doc = prof::Json::parse(trace::chrome_trace_json());
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 3u);

  const prof::Json* begin = nullptr;
  const prof::Json* end = nullptr;
  const prof::Json* span = nullptr;
  for (const auto& ev : events.items()) {
    const auto& ph = ev.at("ph").as_string();
    if (ph == "b") begin = &ev;
    if (ph == "e") end = &ev;
    if (ph == "X") span = &ev;
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  ASSERT_NE(span, nullptr);
  // Chrome matches async pairs by (category, id).
  EXPECT_EQ(begin->at("cat").as_string(), end->at("cat").as_string());
  EXPECT_EQ(begin->at("id").as_string(), end->at("id").as_string());
  EXPECT_EQ(begin->at("id").as_string(), std::to_string(rid));
  // Timestamps are microseconds, ordered begin <= span <= end.
  EXPECT_LE(begin->at("ts").as_number(), span->at("ts").as_number());
  EXPECT_LE(span->at("ts").as_number() + span->at("dur").as_number(),
            end->at("ts").as_number() + 1e-3);
  // The span carries its request id and argument.
  EXPECT_EQ(span->at("args").at("request_id").as_uint(), rid);
  EXPECT_EQ(span->at("args").at("width").as_int(), 4);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_uint(), 0u);
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  trace::start(/*per_thread_capacity=*/kSpansPerThread);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::ScopedRequestId rid(static_cast<std::uint64_t>(t) + 1000);
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::TraceSpan span("concurrent", "test");
        span.arg("i", i);
      }
    });
  }
  // Snapshot while recording is in flight (the tsan-interesting part).
  (void)trace::snapshot();
  for (auto& t : threads) t.join();
  trace::stop();

  const auto snap = trace::snapshot();
  const auto spans = events_named(snap, "concurrent");
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(snap.dropped, 0u);
  // Each recording thread kept its own id on every span.
  std::set<std::uint64_t> ids;
  for (const auto& ev : spans) ids.insert(ev.id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, ServiceRequestsCorrelateAcrossThreads) {
  trace::start();
  const auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(3000, 3000, 2.0, 100, /*seed=*/13));
  core::HeuristicPredictor pred;
  serve::ServiceOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  serve::SpmvService<float> service(pred, opts);

  constexpr int kRequests = 8;
  std::vector<float> x(static_cast<std::size_t>(a->cols()), 1.0f);
  std::vector<std::future<std::vector<float>>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) futs.push_back(service.submit(a, x));
  for (auto& f : futs) (void)f.get();
  service.shutdown();
  trace::stop();

  const auto snap = trace::snapshot();
  const auto begins = events_named(snap, "request");
  // Every request opened and closed its async lifetime exactly once.
  std::set<std::uint64_t> begin_ids;
  std::set<std::uint64_t> end_ids;
  std::uint64_t a_begin_tid = 0;
  for (const auto& ev : begins) {
    if (ev.phase == 'b') {
      EXPECT_TRUE(begin_ids.insert(ev.id).second);
      a_begin_tid = ev.tid;
    }
    if (ev.phase == 'e') EXPECT_TRUE(end_ids.insert(ev.id).second);
  }
  EXPECT_EQ(begin_ids.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(begin_ids, end_ids);

  // Worker-side spans carry the submitting request's id — the trace is
  // correlated across threads even though execution happened elsewhere.
  const auto execs = events_named(snap, "execute-batch");
  ASSERT_FALSE(execs.empty());
  for (const auto& ev : execs) {
    EXPECT_EQ(ev.phase, 'X');
    EXPECT_EQ(begin_ids.count(ev.id), 1u)
        << "execute-batch span with unknown request id " << ev.id;
    EXPECT_NE(ev.tid, a_begin_tid)
        << "execution unexpectedly ran on the submitting thread";
  }
  // Plan-cache lookups were traced too (one per claimed batch).
  EXPECT_FALSE(events_named(snap, "plan-cache-get").empty());
}

TEST_F(TraceTest, TunerPlanningStagesAreTraced) {
  const auto a = gen::banded<float>(2000, 7, 0.9, /*seed=*/5);
  core::HeuristicPredictor pred;
  trace::start();
  const auto spmv = core::Tuner(a).predictor(pred).build();
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y));
  trace::stop();

  const auto snap = trace::snapshot();
  EXPECT_FALSE(events_named(snap, "plan-features").empty());
  EXPECT_FALSE(events_named(snap, "plan-binning").empty());
  // The run dispatched at least one per-bin kernel span.
  bool saw_kernel = false;
  for (const auto& ev : snap.events) {
    if (ev.category != nullptr &&
        std::string(ev.category) == "kernel") {
      saw_kernel = true;
      EXPECT_EQ(ev.phase, 'X');
      EXPECT_GT(ev.arg_vals[0], 0);  // virtual_rows
    }
  }
  EXPECT_TRUE(saw_kernel);
}

TEST_F(TraceTest, SampleRequestHonorsOneInN) {
  // Off: one relaxed load, always false.
  EXPECT_FALSE(trace::sample_request());

  trace::TraceConfig cfg;
  cfg.sample_every_n = 4;
  trace::start(cfg);
  int sampled = 0;
  for (int i = 0; i < 40; ++i)
    if (trace::sample_request()) sampled += 1;
  trace::stop();
  EXPECT_EQ(sampled, 10);  // exactly 1-in-4, starting with the first

  // Default config samples everything.
  trace::start();
  EXPECT_TRUE(trace::sample_request());
  EXPECT_TRUE(trace::sample_request());
  trace::stop();
}

TEST_F(TraceTest, ServiceRequestSamplingTracesOneInN) {
  core::HeuristicPredictor pred;
  serve::ServiceOptions opts;
  opts.workers = 1;
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::diagonal<float>(300));
  serve::SpmvService<float> service(pred, opts);

  trace::TraceConfig cfg;
  cfg.sample_every_n = 5;
  trace::start(cfg);
  for (int i = 0; i < 10; ++i)
    (void)service.run(a, std::vector<float>(300, 1.0f));
  trace::stop();

  // Sequential submits: exactly 1-in-5 request lifetimes were recorded
  // (sampled-out requests allocate no id and emit no request events).
  const auto snap = trace::snapshot();
  std::set<std::uint64_t> begun;
  for (const auto& ev : events_named(snap, "request")) {
    if (ev.phase == 'b') begun.insert(ev.id);
  }
  EXPECT_EQ(begun.size(), 2u);
}

// Correctness tests for the nine-kernel pool: every kernel must compute
// exactly the same y = A*x as Algorithm 1, over matrices spanning all row-
// length regimes, in full-matrix and per-bin execution, at several
// granularities.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "binning/binning.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "kernels/registry.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using kernels::KernelId;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Named test matrices spanning the regimes the kernels specialize for.
CsrMatrix<double> make_matrix(const std::string& name) {
  if (name == "diag") return gen::diagonal<double>(700);
  if (name == "banded") return gen::banded<double>(500, 4, 0.5, 1);
  if (name == "short_rows") return gen::fixed_degree<double>(900, 300, 3, 2);
  if (name == "power_law") return gen::power_law<double>(800, 800, 2.0, 400, 3);
  if (name == "long_rows") return gen::cfd_longrow<double>(150, 200, 4);
  if (name == "mixed")
    return gen::mixed_regime<double>(600, 600, 0.4, 0.4, 2, 30, 300, 16, 5);
  if (name == "empty_rows") {
    // Rows 0,2,4,... empty; odd rows short.
    CooMatrix<double> coo(101, 50);
    for (index_t r = 1; r < 101; r += 2) coo.add(r, r % 50, 2.0);
    return coo_to_csr(std::move(coo));
  }
  if (name == "single_long_row") {
    CooMatrix<double> coo(3, 5000);
    for (index_t c = 0; c < 5000; ++c) coo.add(1, c, 0.25);
    coo.add(0, 0, 1.0);
    return coo_to_csr(std::move(coo));
  }
  if (name == "tiny") {
    CooMatrix<double> coo(1, 1);
    coo.add(0, 0, 3.0);
    return coo_to_csr(std::move(coo));
  }
  throw std::invalid_argument("unknown test matrix " + name);
}

void expect_matches_exact(const CsrMatrix<double>& a,
                          std::span<const double> x,
                          std::span<const double> y) {
  const auto exact = kernels::spmv_exact(a, x);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale = std::abs(exact[i]) + 1.0;
    ASSERT_NEAR(y[i], exact[i], 1e-9 * scale) << "row " << i;
  }
}

// ---- reference kernels ---------------------------------------------------

TEST(Reference, SequentialMatchesExact) {
  const auto a = make_matrix("mixed");
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 11);
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  kernels::spmv_sequential(a, std::span<const double>(x), std::span<double>(y));
  expect_matches_exact(a, x, y);
}

TEST(Reference, OmpMatchesSequential) {
  const auto a = make_matrix("power_law");
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 12);
  std::vector<double> y_seq(static_cast<std::size_t>(a.rows()));
  std::vector<double> y_omp(static_cast<std::size_t>(a.rows()));
  kernels::spmv_sequential(a, std::span<const double>(x), std::span<double>(y_seq));
  kernels::spmv_omp_rows(a, std::span<const double>(x), std::span<double>(y_omp));
  for (std::size_t i = 0; i < y_seq.size(); ++i)
    ASSERT_DOUBLE_EQ(y_omp[i], y_seq[i]);
}

TEST(Reference, ShapeChecks) {
  const auto a = make_matrix("tiny");
  std::vector<double> bad_x(5), y(1), x(1), bad_y(9);
  EXPECT_THROW(kernels::spmv_sequential(a, std::span<const double>(bad_x), std::span<double>(y)),
               std::invalid_argument);
  EXPECT_THROW(kernels::spmv_sequential(a, std::span<const double>(x), std::span<double>(bad_y)),
               std::invalid_argument);
}

// ---- registry metadata ----------------------------------------------------

TEST(Registry, NinePoolKernels) {
  EXPECT_EQ(kernels::all_kernels().size(), 9u);
  EXPECT_EQ(kernels::kKernelCount, 9);
}

TEST(Registry, NamesRoundTrip) {
  for (KernelId id : kernels::all_kernels()) {
    EXPECT_EQ(kernels::kernel_from_name(kernels::kernel_name(id)), id);
  }
  EXPECT_THROW(kernels::kernel_from_name("bogus"), std::invalid_argument);
}

TEST(Registry, LanesPerRowAscending) {
  EXPECT_EQ(kernels::lanes_per_row(KernelId::Serial), 1);
  EXPECT_EQ(kernels::lanes_per_row(KernelId::Sub2), 2);
  EXPECT_EQ(kernels::lanes_per_row(KernelId::Sub128), 128);
  EXPECT_EQ(kernels::lanes_per_row(KernelId::Vector), 256);
  int prev = 0;
  for (KernelId id : kernels::all_kernels()) {
    EXPECT_GT(kernels::lanes_per_row(id), prev);
    prev = kernels::lanes_per_row(id);
  }
}

// ---- full-matrix correctness: kernel x matrix ------------------------------

using KernelMatrixCase = std::tuple<KernelId, std::string>;

class KernelCorrectness
    : public ::testing::TestWithParam<KernelMatrixCase> {};

TEST_P(KernelCorrectness, FullMatrixMatchesReference) {
  const auto [id, matrix_name] = GetParam();
  const auto a = make_matrix(matrix_name);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 21);
  std::vector<double> y(static_cast<std::size_t>(a.rows()),
                        std::nan(""));
  kernels::run_full(id, clsim::default_engine(), a, std::span<const double>(x),
                    std::span<double>(y));
  expect_matches_exact(a, x, y);
}

INSTANTIATE_TEST_SUITE_P(
    PoolByMatrix, KernelCorrectness,
    ::testing::Combine(
        ::testing::ValuesIn(kernels::all_kernels()),
        ::testing::Values("diag", "banded", "short_rows", "power_law",
                          "long_rows", "mixed", "empty_rows",
                          "single_long_row", "tiny")),
    [](const ::testing::TestParamInfo<KernelMatrixCase>& info) {
      return kernels::kernel_name(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// ---- binned execution: composing per-bin launches covers the matrix -------

class BinnedKernelCorrectness
    : public ::testing::TestWithParam<std::tuple<KernelId, index_t>> {};

TEST_P(BinnedKernelCorrectness, PerBinLaunchesComposeFullSpmv) {
  const auto [id, unit] = GetParam();
  const auto a = make_matrix("mixed");
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 31);
  const auto bins = binning::bin_matrix(a, unit);

  std::vector<double> y(static_cast<std::size_t>(a.rows()), std::nan(""));
  for (int b : bins.occupied_bins()) {
    kernels::run_binned(id, clsim::default_engine(), a,
                        std::span<const double>(x), std::span<double>(y),
                        bins.bin(b), unit);
  }
  expect_matches_exact(a, x, y);
}

INSTANTIATE_TEST_SUITE_P(
    PoolByUnit, BinnedKernelCorrectness,
    ::testing::Combine(::testing::ValuesIn(kernels::all_kernels()),
                       ::testing::Values(index_t{1}, index_t{10},
                                         index_t{100}, index_t{100000})),
    [](const ::testing::TestParamInfo<std::tuple<KernelId, index_t>>& info) {
      return kernels::kernel_name(std::get<0>(info.param)) + "_U" +
             std::to_string(std::get<1>(info.param));
    });

// ---- partial execution: rows outside the bin stay untouched ---------------

TEST(BinnedExecution, OnlyCoveredRowsWritten) {
  const auto a = make_matrix("mixed");
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 41);
  const auto bins = binning::bin_matrix(a, 10);
  const auto occupied = bins.occupied_bins();
  ASSERT_GE(occupied.size(), 2u);

  const double sentinel = -777.0;
  std::vector<double> y(static_cast<std::size_t>(a.rows()), sentinel);
  // Run only the first occupied bin.
  kernels::run_binned(KernelId::Sub8, clsim::default_engine(), a,
                      std::span<const double>(x), std::span<double>(y),
                      bins.bin(occupied[0]), 10);

  // Rows of that bin are written; rows of other bins still hold sentinel.
  std::vector<bool> covered(static_cast<std::size_t>(a.rows()), false);
  for (index_t v : bins.bin(occupied[0])) {
    for (index_t r = v * 10; r < std::min<index_t>(v * 10 + 10, a.rows()); ++r)
      covered[static_cast<std::size_t>(r)] = true;
  }
  const auto exact = kernels::spmv_exact(a, std::span<const double>(x));
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (covered[i]) {
      EXPECT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
    } else {
      EXPECT_EQ(y[i], sentinel) << "row " << r << " touched unexpectedly";
    }
  }
}

TEST(BinnedExecution, EmptyBinIsNoOp) {
  const auto a = make_matrix("tiny");
  std::vector<double> x(1, 1.0), y(1, -5.0);
  const std::vector<index_t> empty;
  kernels::run_binned(KernelId::Vector, clsim::default_engine(), a,
                      std::span<const double>(x), std::span<double>(y), empty,
                      10);
  EXPECT_EQ(y[0], -5.0);
}

// ---- float path ------------------------------------------------------------

TEST(FloatKernels, AllKernelsMatchDoubleReference) {
  const auto ad = make_matrix("mixed");
  const auto af = convert_values<float>(ad);
  const auto xd = random_vector(static_cast<std::size_t>(ad.cols()), 51);
  std::vector<float> xf(xd.begin(), xd.end());
  const auto exact = kernels::spmv_exact(ad, std::span<const double>(xd));

  for (KernelId id : kernels::all_kernels()) {
    std::vector<float> y(static_cast<std::size_t>(af.rows()));
    kernels::run_full(id, clsim::default_engine(), af,
                      std::span<const float>(xf), std::span<float>(y));
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double scale = std::abs(exact[i]) + 1.0;
      ASSERT_NEAR(static_cast<double>(y[i]), exact[i], 2e-4 * scale)
          << kernels::kernel_name(id) << " row " << i;
    }
  }
}

}  // namespace

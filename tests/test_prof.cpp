// spmv::prof: engine counter aggregation under concurrent launches, JSON
// round-tripping of a RunProfile, and the Tuner facade's telemetry wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "autospmv.hpp"

using namespace spmv;

namespace {

// A 4-compute-unit device whose launches in this file stay on the inline
// fast path (num_groups <= 2), so concurrent Engine::launch calls from
// many host threads never contend on the shared thread pool.
clsim::Device small_device() {
  clsim::Device d;
  d.compute_units = 4;
  return d;
}

}  // namespace

TEST(ProfCounters, DisabledFlagRecordsNothing) {
  prof::ScopedEnable off(false);
  clsim::Engine engine(small_device());
  engine.launch({.num_groups = 2, .group_size = 64},
                [](clsim::WorkGroup& wg) { wg.local_array<float>(16); });
  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, 0u);
  EXPECT_EQ(s.groups, 0u);
  EXPECT_EQ(s.arena_high_water_bytes, 0u);
}

TEST(ProfCounters, ConcurrentInlineLaunchesAggregate) {
  prof::ScopedEnable on;
  clsim::Engine engine(small_device());

  constexpr int kThreads = 8;
  constexpr int kLaunchesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine] {
      for (int i = 0; i < kLaunchesPerThread; ++i) {
        engine.launch({.num_groups = 2, .group_size = 64},
                      [](clsim::WorkGroup& wg) {
                        auto scratch = wg.local_array<float>(64);
                        scratch[0] = static_cast<float>(wg.group_id());
                      });
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, static_cast<std::uint64_t>(kThreads) *
                            kLaunchesPerThread);
  EXPECT_EQ(s.inline_launches, s.launches);
  EXPECT_EQ(s.groups, 2 * s.launches);
  EXPECT_EQ(s.chunks, 0u);  // inline fast path never touches the pool
  EXPECT_GE(s.arena_high_water_bytes, 64 * sizeof(float));
}

TEST(ProfCounters, PooledLaunchCountsGroupsAndChunks) {
  prof::ScopedEnable on;
  clsim::Engine engine;  // default device: all hardware threads
  engine.counters().reset();
  engine.launch({.num_groups = 64, .group_size = 64, .chunk = 4},
                [](clsim::WorkGroup& wg) { wg.local_array<double>(32); });

  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, 1u);
  EXPECT_EQ(s.groups, 64u);
  if (engine.device().resolved_compute_units() > 1) {
    EXPECT_EQ(s.inline_launches, 0u);
    EXPECT_EQ(s.chunks, 16u);  // ceil(64 / 4)
  } else {
    EXPECT_EQ(s.inline_launches, 1u);
    EXPECT_EQ(s.chunks, 0u);
  }
  EXPECT_GE(s.arena_high_water_bytes, 32 * sizeof(double));
}

TEST(ProfCounters, SnapshotDelta) {
  prof::EngineCountersSnapshot before{.launches = 2,
                                      .inline_launches = 1,
                                      .groups = 10,
                                      .chunks = 3,
                                      .arena_high_water_bytes = 128};
  prof::EngineCountersSnapshot after{.launches = 5,
                                     .inline_launches = 1,
                                     .groups = 40,
                                     .chunks = 9,
                                     .arena_high_water_bytes = 512};
  const auto d = after.delta_since(before);
  EXPECT_EQ(d.launches, 3u);
  EXPECT_EQ(d.inline_launches, 0u);
  EXPECT_EQ(d.groups, 30u);
  EXPECT_EQ(d.chunks, 6u);
  EXPECT_EQ(d.arena_high_water_bytes, 512u);  // level, not flow
}

TEST(ProfJson, ScalarAndContainerRoundTrip) {
  prof::Json obj = prof::Json::object();
  obj.set("name", "bin \"0\"\n");
  obj.set("count", std::int64_t{42});
  obj.set("ratio", 0.125);
  obj.set("on", true);
  obj.set("off", prof::Json());
  prof::Json arr = prof::Json::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  obj.set("items", arr);

  const auto parsed = prof::Json::parse(obj.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "bin \"0\"\n");
  EXPECT_EQ(parsed.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_number(), 0.125);
  EXPECT_TRUE(parsed.at("on").as_bool());
  EXPECT_TRUE(parsed.at("off").is_null());
  EXPECT_EQ(parsed.at("items").size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("items").at(1).as_number(), -2.5);
  // Compact and pretty dumps parse to the same document.
  EXPECT_EQ(prof::Json::parse(obj.dump(0)).dump(), parsed.dump());
}

TEST(ProfJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(prof::Json::parse(""), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("nul"), std::runtime_error);
}

TEST(ProfRunProfile, JsonRoundTrip) {
  prof::RunProfile p;
  p.label = "cant";
  p.rows = 62451;
  p.cols = 62451;
  p.nnz = 4007383;
  p.plan = "U=100 {bin0:serial, bin3:subvector16}";
  p.plan_timing = {.features_s = 1e-4, .predict_s = 2e-5, .binning_s = 3e-4};
  p.add_bin_run(0, "serial", 625, 62451, 3000000, 0.002);
  p.add_bin_run(0, "serial", 625, 62451, 3000000, 0.001);  // second run
  p.add_bin_run(3, "subvector16", 10, 1000, 1007383, 0.0005);
  p.runs = 2;
  p.run_total_s = 0.0035;
  p.engine = {.launches = 4,
              .inline_launches = 1,
              .groups = 1024,
              .chunks = 256,
              .arena_high_water_bytes = 8192};
  p.add_candidate("U=100", 0.05, 18, 0.002);
  p.add_candidate("single-bin", 0.04, 9, 0.004);

  const auto restored =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(restored.label, p.label);
  EXPECT_EQ(restored.rows, p.rows);
  EXPECT_EQ(restored.nnz, p.nnz);
  EXPECT_EQ(restored.plan, p.plan);
  EXPECT_DOUBLE_EQ(restored.plan_timing.features_s, 1e-4);
  EXPECT_DOUBLE_EQ(restored.plan_timing.total_s(), p.plan_timing.total_s());
  ASSERT_EQ(restored.bins.size(), 2u);
  EXPECT_EQ(restored.bins[0].bin_id, 0);
  EXPECT_EQ(restored.bins[0].kernel, "serial");
  EXPECT_EQ(restored.bins[0].launches, 2u);  // merged across runs
  EXPECT_DOUBLE_EQ(restored.bins[0].seconds, 0.003);
  EXPECT_EQ(restored.bins[1].nnz, 1007383);
  EXPECT_EQ(restored.runs, 2u);
  EXPECT_EQ(restored.engine.groups, 1024u);
  EXPECT_EQ(restored.engine.arena_high_water_bytes, 8192u);
  ASSERT_EQ(restored.tuning.size(), 2u);
  EXPECT_EQ(restored.tuning[1].label, "single-bin");
  EXPECT_DOUBLE_EQ(restored.tuning_total_s, 0.09);
  // Serializing again is a fixed point.
  EXPECT_EQ(restored.to_json_text(), p.to_json_text());
}

TEST(ProfHistogram, BucketIndexAndPercentiles) {
  using H = prof::LatencyHistogram;
  // Bucket 0 catches everything at or below the 100 ns floor — including
  // the pathological inputs add() clamps.
  EXPECT_EQ(H::bucket_index(0.0), 0);
  EXPECT_EQ(H::bucket_index(-1.0), 0);
  EXPECT_EQ(H::bucket_index(1e-7), 0);
  EXPECT_EQ(H::bucket_index(1e-6), H::bucket_index(1e-6));
  EXPECT_LT(H::bucket_index(1e-6), H::bucket_index(1e-3));
  EXPECT_EQ(H::bucket_index(1e9), H::kBuckets - 1);  // clamped to the top
  // Bounds tile the axis: each bucket's upper bound is the next lower one.
  for (int i = 0; i < H::kBuckets - 1; ++i)
    EXPECT_DOUBLE_EQ(H::bucket_upper_bound(i), H::bucket_lower_bound(i + 1));

  H h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  for (int i = 0; i < 99; ++i) h.add(1e-3);
  h.add(1.0);  // one outlier
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min_s(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max_s(), 1.0);
  // p50/p95 land in the 1 ms bucket (one-bucket ~26% accuracy); p99 is
  // still below the outlier, p100 reaches it.
  EXPECT_NEAR(h.percentile(50), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.percentile(95), 1e-3, 0.3e-3);
  EXPECT_LT(h.percentile(99), 0.5);
  // p100 lands in the outlier's bucket (midpoint within ~26%, never past
  // the observed max).
  EXPECT_NEAR(h.percentile(100), 1.0, 0.3);
  EXPECT_LE(h.percentile(100), h.max_s());
}

TEST(ProfHistogram, MergeAndJsonRoundTrip) {
  prof::LatencyHistogram a;
  a.add(1e-4);
  a.add(2e-4);
  prof::LatencyHistogram b;
  b.add(5e-2);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min_s(), 1e-4);
  EXPECT_DOUBLE_EQ(a.max_s(), 5e-2);
  EXPECT_NEAR(a.total_s(), 1e-4 + 2e-4 + 5e-2, 1e-12);
  // Merging an empty histogram is a no-op either direction.
  prof::LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);

  const auto restored = prof::LatencyHistogram::from_json(
      prof::Json::parse(a.to_json().dump()));
  EXPECT_EQ(restored.count(), a.count());
  EXPECT_DOUBLE_EQ(restored.min_s(), a.min_s());
  EXPECT_DOUBLE_EQ(restored.max_s(), a.max_s());
  EXPECT_EQ(restored.buckets(), a.buckets());
  EXPECT_DOUBLE_EQ(restored.percentile(50), a.percentile(50));
}

TEST(ProfServeStats, AddBatchEdgeCases) {
  prof::ServeStats s;
  // width < 1 still counts the dispatch but records no histogram slot.
  s.add_batch(0);
  s.add_batch(-3);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_TRUE(s.batch_width_hist.empty());
  // The width histogram grows to the widest batch seen and backfills.
  s.add_batch(1);
  s.add_batch(5);
  s.add_batch(5);
  ASSERT_EQ(s.batch_width_hist.size(), 5u);
  EXPECT_EQ(s.batch_width_hist[0], 1u);
  EXPECT_EQ(s.batch_width_hist[1], 0u);
  EXPECT_EQ(s.batch_width_hist[4], 2u);
  EXPECT_EQ(s.batches, 5u);
}

TEST(ProfServeStats, CacheHitRateWithZeroTraffic) {
  const prof::ServeStats s;
  EXPECT_DOUBLE_EQ(s.cache_hit_rate(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(ProfServeStats, MergeFoldsCountersMaxesAndHistograms) {
  prof::ServeStats a;
  a.requests = 10;
  a.batches = 4;
  a.queue_wait_total_s = 0.5;
  a.queue_wait_max_s = 0.2;
  a.cache_hits = 8;
  a.add_batch(2);
  a.request_latency.add(1e-3);
  prof::ServeStats b;
  b.requests = 5;
  b.rejected = 1;
  b.queue_wait_total_s = 0.25;
  b.queue_wait_max_s = 0.4;
  b.cache_misses = 2;
  b.add_batch(3);
  b.request_latency.add(2e-3);
  b.batch_exec.add(5e-4);

  a.merge(b);
  EXPECT_EQ(a.requests, 15u);
  EXPECT_EQ(a.rejected, 1u);
  EXPECT_EQ(a.batches, 6u);  // 4 + 1 (add_batch) + 1 (merged)
  EXPECT_DOUBLE_EQ(a.queue_wait_total_s, 0.75);
  EXPECT_DOUBLE_EQ(a.queue_wait_max_s, 0.4);  // max, not sum
  EXPECT_EQ(a.cache_hits, 8u);
  EXPECT_EQ(a.cache_misses, 2u);
  ASSERT_EQ(a.batch_width_hist.size(), 3u);
  EXPECT_EQ(a.batch_width_hist[1], 1u);
  EXPECT_EQ(a.batch_width_hist[2], 1u);
  EXPECT_EQ(a.request_latency.count(), 2u);
  EXPECT_EQ(a.batch_exec.count(), 1u);
}

TEST(ProfRunProfile, ServeHistogramsRoundTripThroughJson) {
  prof::RunProfile p;
  p.label = "serve";
  p.serve.requests = 100;
  p.serve.batches = 30;
  p.serve.cache_hits = 95;
  p.serve.cache_misses = 5;
  p.serve.add_batch(4);
  for (int i = 0; i < 100; ++i) p.serve.request_latency.add(1e-3 + 1e-5 * i);
  for (int i = 0; i < 100; ++i) p.serve.queue_wait.add(2e-4);
  for (int i = 0; i < 30; ++i) p.serve.batch_exec.add(8e-4);

  const auto restored =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(restored.serve.requests, 100u);
  EXPECT_EQ(restored.serve.request_latency.count(), 100u);
  EXPECT_EQ(restored.serve.queue_wait.count(), 100u);
  EXPECT_EQ(restored.serve.batch_exec.count(), 30u);
  EXPECT_DOUBLE_EQ(restored.serve.request_latency.percentile(95),
                   p.serve.request_latency.percentile(95));
  // Serializing again is a fixed point (percentile fields included).
  EXPECT_EQ(restored.to_json_text(), p.to_json_text());

  // Old artifacts without histogram fields still load.
  auto j = prof::Json::parse(p.to_json_text());
  prof::Json serve = prof::Json::object();
  for (const auto& [key, value] : j.at("serve").members()) {
    if (key != "request_latency" && key != "queue_wait" &&
        key != "batch_exec")
      serve.set(key, value);
  }
  prof::Json trimmed = prof::Json::object();
  for (const auto& [key, value] : j.members())
    trimmed.set(key, key == "serve" ? serve : value);
  const auto old = prof::RunProfile::from_json(trimmed);
  EXPECT_EQ(old.serve.requests, 100u);
  EXPECT_TRUE(old.serve.request_latency.empty());
}

TEST(ProfCompare, IdenticalProfilesDoNotRegress) {
  prof::RunProfile p;
  p.runs = 10;
  p.run_total_s = 0.1;
  p.plan_timing = {.features_s = 1e-3, .predict_s = 1e-4, .binning_s = 2e-3};
  p.add_bin_run(0, "serial", 100, 1000, 5000, 0.01);
  for (int i = 0; i < 50; ++i) p.serve.request_latency.add(1e-3);
  p.serve.requests = 50;

  const auto result = prof::compare_profiles(p, p, 1.15);
  ASSERT_FALSE(result.metrics.empty());
  EXPECT_FALSE(result.regressed());
  for (const auto& m : result.metrics) {
    EXPECT_DOUBLE_EQ(m.ratio, 1.0);
    EXPECT_FALSE(m.regressed);
  }
}

TEST(ProfCompare, SyntheticSlowdownTripsTheGate) {
  prof::RunProfile baseline;
  baseline.runs = 10;
  baseline.run_total_s = 0.1;
  baseline.add_bin_run(2, "subvector8", 10, 100, 1000, 0.02);
  prof::RunProfile current = baseline;
  current.run_total_s = 0.2;  // 2x mean-run slowdown
  current.bins[0].seconds = 0.05;

  const auto result = prof::compare_profiles(baseline, current, 1.15);
  EXPECT_TRUE(result.regressed());
  bool run_flagged = false;
  for (const auto& m : result.metrics) {
    if (m.name == "run_mean_s") {
      run_flagged = true;
      EXPECT_DOUBLE_EQ(m.ratio, 2.0);
      EXPECT_TRUE(m.regressed);
    }
  }
  EXPECT_TRUE(run_flagged);
  // The same pair passes with a threshold above the slowdown.
  EXPECT_FALSE(prof::compare_profiles(baseline, current, 3.0).regressed());
  EXPECT_THROW(prof::compare_profiles(baseline, current, 0.0),
               std::invalid_argument);
}

TEST(ProfCompare, SkipsMetricsMissingOnEitherSide) {
  prof::RunProfile baseline;
  baseline.runs = 5;
  baseline.run_total_s = 0.05;
  baseline.add_bin_run(0, "serial", 1, 1, 10, 0.01);
  prof::RunProfile current;
  current.runs = 5;
  current.run_total_s = 0.05;
  current.add_bin_run(3, "vector", 1, 1, 10, 0.5);  // different plan

  const auto result = prof::compare_profiles(baseline, current, 1.15);
  ASSERT_EQ(result.metrics.size(), 1u);  // only run_mean_s is comparable
  EXPECT_EQ(result.metrics[0].name, "run_mean_s");
  EXPECT_FALSE(result.regressed());
  // The baseline bin the current profile lost is reported as schema drift
  // (compare-profiles exits 2 on this), not silently skipped.
  EXPECT_TRUE(result.schema_mismatch());
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "bin0_serial_s");
}

TEST(ProfCompare, ReportsEveryMissingMetricFamilyAsSchemaMismatch) {
  prof::RunProfile baseline;
  baseline.runs = 5;
  baseline.run_total_s = 0.05;
  baseline.plan_timing = {.features_s = 1e-3, .predict_s = 0, .binning_s = 0};
  baseline.serve.request_latency.add(1e-3);
  baseline.serve.queue_wait.add(1e-4);
  baseline.serve.batch_exec.add(5e-4);

  // An empty current profile lost everything the baseline tracked.
  const auto result =
      prof::compare_profiles(baseline, prof::RunProfile{}, 1.15);
  EXPECT_TRUE(result.metrics.empty());
  EXPECT_FALSE(result.regressed());
  ASSERT_TRUE(result.schema_mismatch());
  const std::vector<std::string> want = {
      "run_mean_s", "plan_total_s", "serve_request_latency",
      "serve_queue_wait", "serve_batch_exec"};
  EXPECT_EQ(result.missing, want);

  // Identical sides report no mismatch.
  EXPECT_FALSE(prof::compare_profiles(baseline, baseline, 1.15)
                   .schema_mismatch());
}

TEST(ProfPrometheus, ExposesCountersAndQuantiles) {
  prof::RunProfile p;
  p.runs = 4;
  p.run_total_s = 0.02;
  p.serve.requests = 10;
  p.serve.batches = 3;
  p.serve.cache_hits = 9;
  p.serve.cache_misses = 1;
  for (int i = 0; i < 10; ++i) p.serve.request_latency.add(1e-3);

  const auto text = prof::prometheus_text(p);
  EXPECT_NE(text.find("spmv_runs_total 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spmv_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("spmv_serve_requests_total 10"), std::string::npos);
  EXPECT_NE(text.find("spmv_serve_cache_hit_rate 0.9"), std::string::npos);
  EXPECT_NE(
      text.find("spmv_serve_request_latency_seconds{quantile=\"0.95\"}"),
      std::string::npos);
  EXPECT_NE(text.find("spmv_serve_request_latency_seconds_count 10"),
            std::string::npos);
  // Empty serve stats expose only the run/engine families.
  const auto bare = prof::prometheus_text(prof::RunProfile{});
  EXPECT_NE(bare.find("spmv_runs_total 0"), std::string::npos);
  EXPECT_EQ(bare.find("spmv_serve_requests_total"), std::string::npos);
}

TEST(ProfHistogram, ExemplarTracedBeatsUntracedThenRecencyWins) {
  prof::LatencyHistogram h;
  const int bucket = prof::LatencyHistogram::bucket_index(1e-3);

  prof::Exemplar untraced;  // trace_id == 0: a sampled-out request
  untraced.fingerprint = 11;
  h.add(1e-3, untraced);
  ASSERT_TRUE(h.exemplar(bucket).valid());
  EXPECT_EQ(h.exemplar(bucket).trace_id, 0u);
  EXPECT_DOUBLE_EQ(h.exemplar(bucket).value_s, 1e-3);
  EXPECT_TRUE(h.has_exemplars());

  prof::Exemplar traced;
  traced.trace_id = 77;
  traced.fingerprint = 22;
  h.add(1e-3, traced);  // same bucket
  EXPECT_EQ(h.exemplar(bucket).trace_id, 77u);

  // A later untraced sample must NOT displace the resolvable exemplar...
  h.add(1e-3, untraced);
  EXPECT_EQ(h.exemplar(bucket).trace_id, 77u);
  EXPECT_EQ(h.exemplar(bucket).fingerprint, 22u);
  // ...but a later traced one replaces it (recency among equals).
  prof::Exemplar newer;
  newer.trace_id = 78;
  h.add(1e-3, newer);
  EXPECT_EQ(h.exemplar(bucket).trace_id, 78u);

  // Other buckets are untouched; counts include every add.
  EXPECT_EQ(h.count(), 4u);
  EXPECT_FALSE(h.exemplar(bucket + 5).valid());
}

TEST(ProfHistogram, ExemplarsMergeAndSurviveJsonRoundTrip) {
  prof::LatencyHistogram a;
  prof::Exemplar ea;
  ea.trace_id = 1;
  ea.fingerprint = 0xdeadbeefcafef00dULL;
  ea.plan_revision = 3;
  ea.backend = 1;
  ea.formats = true;
  ea.promo_level = 4;
  a.add(1e-3, ea);

  prof::LatencyHistogram b;
  prof::Exemplar eb;
  eb.trace_id = 0;  // untraced: loses the merge for the shared bucket
  b.add(1e-3, eb);
  prof::Exemplar eb2;
  eb2.trace_id = 9;
  b.add(2.0, eb2);  // a bucket only b populates

  a.merge(b);
  const int shared = prof::LatencyHistogram::bucket_index(1e-3);
  const int slow = prof::LatencyHistogram::bucket_index(2.0);
  EXPECT_EQ(a.exemplar(shared).trace_id, 1u);
  EXPECT_EQ(a.exemplar(slow).trace_id, 9u);

  const auto restored = prof::LatencyHistogram::from_json(
      prof::Json::parse(a.to_json().dump()));
  const auto& ex = restored.exemplar(shared);
  EXPECT_EQ(ex.trace_id, 1u);
  EXPECT_EQ(ex.fingerprint, 0xdeadbeefcafef00dULL);  // hex string in JSON
  EXPECT_EQ(ex.plan_revision, 3u);
  EXPECT_EQ(ex.backend, 1);
  EXPECT_TRUE(ex.formats);
  EXPECT_EQ(ex.promo_level, 4);
  EXPECT_DOUBLE_EQ(ex.value_s, 1e-3);
  EXPECT_EQ(restored.exemplar(slow).trace_id, 9u);

  // Histograms without exemplars serialize without the key and load clean.
  prof::LatencyHistogram plain;
  plain.add(1e-3);
  EXPECT_FALSE(plain.has_exemplars());
  EXPECT_EQ(plain.to_json().find("exemplars"), nullptr);
  const auto replain = prof::LatencyHistogram::from_json(
      prof::Json::parse(plain.to_json().dump()));
  EXPECT_FALSE(replain.has_exemplars());
}

TEST(ProfPrometheus, EscapesLabelValues) {
  EXPECT_EQ(prof::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prof::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prof::prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prof::prometheus_escape_label("line1\nline2"), "line1\\nline2");

  prof::RunProfile p;
  p.label = "web\"graph\\v2\n(test)";
  const auto text = prof::prometheus_text(p);
  EXPECT_NE(text.find("spmv_profile_info{label=\"web\\\"graph\\\\v2\\n"
                      "(test)\"} 1"),
            std::string::npos);
}

TEST(ProfPrometheus, ExpositionIsConformant) {
  prof::RunProfile p;
  p.label = "conformance";
  p.runs = 2;
  p.run_total_s = 0.01;
  p.serve.requests = 8;
  p.serve.batches = 2;
  p.serve.cache_hits = 8;
  prof::Exemplar ex;
  ex.trace_id = 0xabcULL;
  ex.fingerprint = 0x123ULL;
  ex.plan_revision = 2;
  ex.backend = 1;
  ex.promo_level = 2;
  for (int i = 0; i < 8; ++i) p.serve.request_latency.add(1e-3, ex);
  p.serve.request_latency.add(0.5, ex);
  p.trace_stats.events = 40;
  p.trace_stats.dropped_spans = 2;
  p.trace_stats.threads = 3;

  const auto text = prof::prometheus_text(p);
  std::istringstream lines(text);
  std::string line;
  std::set<std::string> helped;
  std::set<std::string> typed;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const auto name = line.substr(7, line.find(' ', 7) - 7);
      // HELP precedes TYPE precedes samples, once per family.
      EXPECT_TRUE(helped.insert(name).second) << "duplicate HELP " << name;
      EXPECT_EQ(typed.count(name), 0u) << "TYPE before HELP for " << name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(typed.insert(name).second) << "duplicate TYPE " << name;
      EXPECT_EQ(helped.count(name), 1u) << "TYPE without HELP for " << name;
      continue;
    }
    // Sample lines: a valid metric name, then either a value or labels.
    const auto brace = line.find('{');
    const auto name_end = std::min(brace, line.find(' '));
    ASSERT_NE(name_end, std::string::npos) << line;
    const auto name = line.substr(0, name_end);
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << name;
    for (char c : name)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char in " << name;
    // Every sample belongs to a HELPed+TYPEd family (modulo the
    // _bucket/_sum/_count suffixes of summaries and histograms).
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          typed.count(family) == 0)
        family = family.substr(0, family.size() - s.size());
    }
    EXPECT_EQ(typed.count(family), 1u) << "sample without TYPE: " << line;
  }

  // Histogram conformance: cumulative le buckets ending at +Inf == _count.
  const auto hist_pos =
      text.find("# TYPE spmv_serve_request_latency_hist_seconds histogram");
  ASSERT_NE(hist_pos, std::string::npos);
  EXPECT_NE(
      text.find("spmv_serve_request_latency_hist_seconds_bucket{le=\"+Inf\"} "
                "9"),
      std::string::npos);
  EXPECT_NE(text.find("spmv_serve_request_latency_hist_seconds_count 9"),
            std::string::npos);

  // OpenMetrics exemplar syntax on the non-empty buckets: `# {labels} value`
  // with fixed-width hex ids and decoded provenance labels.
  EXPECT_NE(text.find("# {trace_id=\"0000000000000abc\",fingerprint=\""
                      "0000000000000123\",plan_revision=\"2\",backend=\""
                      "native\",formats=\"0\",promo_level=\"unit\"} "),
            std::string::npos);

  // The trace family rides along when trace stats are present.
  EXPECT_NE(text.find("spmv_trace_events_total 40"), std::string::npos);
  EXPECT_NE(text.find("spmv_trace_dropped_spans_total 2"), std::string::npos);
  EXPECT_NE(text.find("spmv_trace_threads 3"), std::string::npos);
}

TEST(ProfRunProfile, TraceStatsRoundTripThroughJson) {
  prof::RunProfile p;
  EXPECT_TRUE(p.trace_stats.empty());
  // Absent from JSON while empty, so old artifacts stay byte-identical.
  EXPECT_EQ(prof::Json::parse(p.to_json_text()).find("trace"), nullptr);

  p.trace_stats.events = 123;
  p.trace_stats.dropped_spans = 7;
  p.trace_stats.threads = 4;
  const auto restored =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(restored.trace_stats.events, 123u);
  EXPECT_EQ(restored.trace_stats.dropped_spans, 7u);
  EXPECT_EQ(restored.trace_stats.threads, 4);
}

TEST(ProfTrajectory, AppendFlattensNumericLeavesWithDottedNames) {
  prof::Json bench = prof::Json::parse(R"({
    "bench": "serve_throughput",
    "config": {"rows": 20000, "requests": 512},
    "serve_rps": 1500.5,
    "request_latency": {"p50_s": 0.001, "p95_s": 0.004},
    "bins": [1, 2, 3]
  })");
  prof::Trajectory t;
  EXPECT_TRUE(t.empty());
  t.append(bench, "run-1");
  ASSERT_EQ(t.entries().size(), 1u);
  const auto& e = t.entries()[0];
  EXPECT_EQ(e.seq, 1u);
  EXPECT_EQ(e.label, "run-1");
  ASSERT_NE(e.find("config.rows"), nullptr);
  EXPECT_DOUBLE_EQ(*e.find("config.rows"), 20000.0);
  ASSERT_NE(e.find("request_latency.p95_s"), nullptr);
  EXPECT_DOUBLE_EQ(*e.find("request_latency.p95_s"), 0.004);
  EXPECT_DOUBLE_EQ(*e.find("serve_rps"), 1500.5);
  // Strings and arrays are not metrics.
  EXPECT_EQ(e.find("bench"), nullptr);
  EXPECT_EQ(e.find("bins"), nullptr);

  // Pruning keeps the newest entries; seq keeps counting.
  for (int i = 2; i <= 10; ++i)
    t.append(bench, "run-" + std::to_string(i), /*max_entries=*/4);
  ASSERT_EQ(t.entries().size(), 4u);
  EXPECT_EQ(t.entries().front().label, "run-7");
  EXPECT_EQ(t.entries().back().seq, 10u);
}

TEST(ProfTrajectory, CheckGatesHeadAgainstRollingWindow) {
  auto bench = [](double rps, double p95) {
    prof::Json j = prof::Json::object();
    j.set("serve_rps", rps);
    j.set("p95_s", p95);
    prof::Json config = prof::Json::object();
    config.set("requests", 512);
    j.set("config", config);
    return j;
  };

  prof::Trajectory t;
  t.append(bench(1000, 1e-3), "a");
  // One entry: a young trajectory only observes.
  EXPECT_TRUE(t.check(5, 1.25).metrics.empty());

  for (const char* label : {"b", "c", "d"})
    t.append(bench(1000, 1e-3), label);
  EXPECT_FALSE(t.check(5, 1.25).regressed());

  // Latency-like metrics regress upward...
  t.append(bench(1000, 2e-3), "slow");
  auto check = t.check(5, 1.25);
  ASSERT_TRUE(check.regressed());
  bool p95_flagged = false;
  for (const auto& m : check.metrics) {
    if (m.name == "p95_s") {
      p95_flagged = true;
      EXPECT_FALSE(m.higher_is_better);
      EXPECT_NEAR(m.ratio, 2.0, 1e-9);
      EXPECT_TRUE(m.regressed);
    }
    if (m.name == "serve_rps") {
      EXPECT_FALSE(m.regressed);
    }
  }
  EXPECT_TRUE(p95_flagged);

  // ...throughput-like metrics regress downward (direction-normalized).
  prof::Trajectory t2;
  for (const char* label : {"a", "b", "c"}) t2.append(bench(1000, 1e-3), label);
  t2.append(bench(600, 1e-3), "throttled");
  check = t2.check(5, 1.25);
  ASSERT_TRUE(check.regressed());
  for (const auto& m : check.metrics) {
    if (m.name == "serve_rps") {
      EXPECT_TRUE(m.higher_is_better);
      EXPECT_GT(m.ratio, 1.25);
      EXPECT_TRUE(m.regressed);
    }
  }

  // config.* never gates, even on a big deliberate change.
  prof::Trajectory t3;
  t3.append(bench(1000, 1e-3), "a");
  auto big = bench(1000, 1e-3);
  prof::Json big_config = prof::Json::object();
  big_config.set("requests", 4096);
  big.set("config", big_config);
  t3.append(big, "bigger-bench");
  check = t3.check(5, 1.25);
  for (const auto& m : check.metrics) {
    if (m.name == "config.requests") {
      EXPECT_GT(m.ratio, 1.25);
      EXPECT_FALSE(m.regressed);
    }
  }
  EXPECT_FALSE(check.regressed());

  // A metric the previous entry had but the head lost is schema drift.
  prof::Json partial = prof::Json::object();
  partial.set("serve_rps", 1000.0);
  t3.append(partial, "lost-p95");
  check = t3.check(5, 1.25);
  ASSERT_FALSE(check.missing.empty());
  bool lost_p95 = false;
  for (const auto& name : check.missing) lost_p95 |= name == "p95_s";
  EXPECT_TRUE(lost_p95);

  EXPECT_THROW(t3.check(0, 1.25), std::invalid_argument);
  EXPECT_THROW(t3.check(5, 0.0), std::invalid_argument);
}

TEST(ProfTrajectory, SaveLoadRoundTripAndMarkdownDashboard) {
  const std::string path =
      ::testing::TempDir() + "/autospmv_trajectory_test.json";
  std::remove(path.c_str());

  // A missing file bootstraps an empty trajectory.
  auto t = prof::Trajectory::load_file(path);
  EXPECT_TRUE(t.empty());

  prof::Json bench = prof::Json::object();
  bench.set("serve_rps", 1200.0);
  bench.set("p95_s", 2e-3);
  t.append(bench, "commit-1");
  bench.set("serve_rps", 1300.0);
  t.append(bench, "commit-2");
  t.save_file(path);

  const auto loaded = prof::Trajectory::load_file(path);
  ASSERT_EQ(loaded.entries().size(), 2u);
  EXPECT_EQ(loaded.entries()[0].label, "commit-1");
  EXPECT_EQ(loaded.entries()[1].seq, 2u);
  EXPECT_DOUBLE_EQ(*loaded.entries()[1].find("serve_rps"), 1300.0);
  // Appending after a reload keeps the sequence monotonic.
  auto more = loaded;
  more.append(bench, "commit-3");
  EXPECT_EQ(more.entries().back().seq, 3u);

  const auto md = loaded.render_markdown();
  EXPECT_NE(md.find("# Perf trajectory"), std::string::npos);
  EXPECT_NE(md.find("`commit-2`"), std::string::npos);
  EXPECT_NE(md.find("| `serve_rps` |"), std::string::npos);
  EXPECT_NE(md.find("▁"), std::string::npos);  // sparkline rendered
  EXPECT_NE(md.find("1300"), std::string::npos);

  // A corrupt history must not pass silently.
  {
    std::ofstream out(path);
    out << "not json";
  }
  EXPECT_THROW(prof::Trajectory::load_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ProfRunProfile, BinSamplesStaySortedByBinId) {
  prof::RunProfile p;
  p.add_bin_run(7, "vector", 1, 1, 10, 0.1);
  p.add_bin_run(2, "serial", 1, 1, 10, 0.1);
  p.add_bin_run(5, "subvector4", 1, 1, 10, 0.1);
  ASSERT_EQ(p.bins.size(), 3u);
  EXPECT_EQ(p.bins[0].bin_id, 2);
  EXPECT_EQ(p.bins[1].bin_id, 5);
  EXPECT_EQ(p.bins[2].bin_id, 7);
}

TEST(Tuner, BuildsProfiledRuntimeAndRecordsRuns) {
  prof::ScopedEnable on;
  const auto a = gen::power_law<float>(4000, 4000, 2.0, 200, /*seed=*/7);
  core::HeuristicPredictor pred;
  prof::RunProfile profile;
  const auto spmv =
      core::Tuner(a).predictor(pred).profile(&profile).build();

  // Plan description is recorded at build time.
  EXPECT_EQ(profile.rows, a.rows());
  EXPECT_EQ(profile.nnz, a.nnz());
  EXPECT_EQ(profile.plan, spmv.plan().to_string());
  EXPECT_GT(profile.plan_timing.features_s, 0.0);
  EXPECT_GT(profile.plan_timing.binning_s, 0.0);

  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) spmv.run(x, std::span<float>(y));

  EXPECT_EQ(profile.runs, static_cast<std::uint64_t>(kRuns));
  EXPECT_GT(profile.run_total_s, 0.0);
  ASSERT_FALSE(profile.bins.empty());
  std::int64_t bins_nnz = 0;
  for (const auto& b : profile.bins) {
    EXPECT_EQ(b.launches, static_cast<std::uint64_t>(kRuns));
    EXPECT_GT(b.seconds, 0.0);
    bins_nnz += b.nnz;
  }
  // The occupied bins partition the matrix.
  EXPECT_EQ(bins_nnz, static_cast<std::int64_t>(a.nnz()));
  EXPECT_GT(profile.engine.launches, 0u);
  EXPECT_GT(profile.engine.groups, 0u);

  // Correctness: matches the sequential reference.
  std::vector<float> expect(static_cast<std::size_t>(a.rows()));
  kernels::spmv_sequential(a, std::span<const float>(x),
                           std::span<float>(expect));
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_NEAR(expect[i], y[i], 1e-3f * (std::abs(expect[i]) + 1.0f));
}

TEST(Tuner, RunOverloadFillsCallerProfile) {
  const auto a = gen::banded<float>(2000, 9, 0.9, /*seed=*/3);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a).predictor(pred).build();
  EXPECT_EQ(spmv.profile(), nullptr);

  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  prof::RunProfile local;
  spmv.run(std::span<const float>(x), std::span<float>(y), &local);
  EXPECT_EQ(local.runs, 1u);
  EXPECT_FALSE(local.bins.empty());
}

TEST(Tuner, SchemeAndUnitOverrides) {
  const auto a = gen::power_law<float>(3000, 3000, 2.0, 100, /*seed=*/11);
  core::HeuristicPredictor pred;

  const auto single =
      core::Tuner(a).predictor(pred).scheme(binning::SchemeKind::SingleBin)
          .build();
  EXPECT_TRUE(single.plan().single_bin);
  ASSERT_EQ(single.plan().bin_kernels.size(), 1u);
  EXPECT_EQ(single.plan().bin_kernels[0].bin_id, 0);

  const auto fine =
      core::Tuner(a).predictor(pred).scheme(binning::SchemeKind::Fine).build();
  EXPECT_EQ(fine.plan().unit, 1);
  EXPECT_FALSE(fine.plan().single_bin);

  const auto forced = core::Tuner(a).predictor(pred).unit(50).build();
  EXPECT_EQ(forced.plan().unit, 50);

  EXPECT_THROW(core::Tuner(a).predictor(pred)
                   .scheme(binning::SchemeKind::Hybrid)
                   .build(),
               std::invalid_argument);
}

TEST(Tuner, ConfigurationErrors) {
  const auto a = gen::banded<float>(100, 3, 0.9, /*seed=*/1);
  EXPECT_THROW(core::Tuner(a).build(), std::logic_error);

  core::Plan plan;
  plan.unit = 10;
  plan.bin_kernels.push_back({0, kernels::KernelId::Serial});
  EXPECT_THROW(core::Tuner(a).plan(plan).unit(10).build(),
               std::invalid_argument);

  // plan() alone works and executes correctly.
  const auto spmv = core::Tuner(a).plan(plan).build();
  EXPECT_EQ(spmv.plan().unit, 10);
}

TEST(ExhaustiveTune, RecordsPerCandidateCost) {
  const auto a = gen::power_law<float>(2000, 2000, 2.0, 80, /*seed=*/5);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  core::CandidatePools pools;
  pools.units = {10, 100};
  pools.kernel_pool = {kernels::KernelId::Serial, kernels::KernelId::Sub8};
  pools.include_single_bin = true;

  prof::RunProfile profile;
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.05};
  opts.profile = &profile;
  core::exhaustive_tune(clsim::default_engine(), a,
                        std::span<const float>(x), pools, opts);

  ASSERT_EQ(profile.tuning.size(), 3u);  // U=10, U=100, single-bin
  EXPECT_EQ(profile.tuning[0].label, "U=10");
  EXPECT_EQ(profile.tuning[1].label, "U=100");
  EXPECT_EQ(profile.tuning[2].label, "single-bin");
  for (const auto& c : profile.tuning) {
    EXPECT_GT(c.measure_s, 0.0);
    EXPECT_GT(c.measurements, 0);
    EXPECT_GT(c.best_s, 0.0);
  }
  EXPECT_GE(profile.tuning_total_s,
            profile.tuning[0].measure_s + profile.tuning[1].measure_s);
}

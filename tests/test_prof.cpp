// spmv::prof: engine counter aggregation under concurrent launches, JSON
// round-tripping of a RunProfile, and the Tuner facade's telemetry wiring.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "autospmv.hpp"

using namespace spmv;

namespace {

// A 4-compute-unit device whose launches in this file stay on the inline
// fast path (num_groups <= 2), so concurrent Engine::launch calls from
// many host threads never contend on the shared thread pool.
clsim::Device small_device() {
  clsim::Device d;
  d.compute_units = 4;
  return d;
}

}  // namespace

TEST(ProfCounters, DisabledFlagRecordsNothing) {
  prof::ScopedEnable off(false);
  clsim::Engine engine(small_device());
  engine.launch({.num_groups = 2, .group_size = 64},
                [](clsim::WorkGroup& wg) { wg.local_array<float>(16); });
  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, 0u);
  EXPECT_EQ(s.groups, 0u);
  EXPECT_EQ(s.arena_high_water_bytes, 0u);
}

TEST(ProfCounters, ConcurrentInlineLaunchesAggregate) {
  prof::ScopedEnable on;
  clsim::Engine engine(small_device());

  constexpr int kThreads = 8;
  constexpr int kLaunchesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine] {
      for (int i = 0; i < kLaunchesPerThread; ++i) {
        engine.launch({.num_groups = 2, .group_size = 64},
                      [](clsim::WorkGroup& wg) {
                        auto scratch = wg.local_array<float>(64);
                        scratch[0] = static_cast<float>(wg.group_id());
                      });
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, static_cast<std::uint64_t>(kThreads) *
                            kLaunchesPerThread);
  EXPECT_EQ(s.inline_launches, s.launches);
  EXPECT_EQ(s.groups, 2 * s.launches);
  EXPECT_EQ(s.chunks, 0u);  // inline fast path never touches the pool
  EXPECT_GE(s.arena_high_water_bytes, 64 * sizeof(float));
}

TEST(ProfCounters, PooledLaunchCountsGroupsAndChunks) {
  prof::ScopedEnable on;
  clsim::Engine engine;  // default device: all hardware threads
  engine.counters().reset();
  engine.launch({.num_groups = 64, .group_size = 64, .chunk = 4},
                [](clsim::WorkGroup& wg) { wg.local_array<double>(32); });

  const auto s = engine.counters().snapshot();
  EXPECT_EQ(s.launches, 1u);
  EXPECT_EQ(s.groups, 64u);
  if (engine.device().resolved_compute_units() > 1) {
    EXPECT_EQ(s.inline_launches, 0u);
    EXPECT_EQ(s.chunks, 16u);  // ceil(64 / 4)
  } else {
    EXPECT_EQ(s.inline_launches, 1u);
    EXPECT_EQ(s.chunks, 0u);
  }
  EXPECT_GE(s.arena_high_water_bytes, 32 * sizeof(double));
}

TEST(ProfCounters, SnapshotDelta) {
  prof::EngineCountersSnapshot before{.launches = 2,
                                      .inline_launches = 1,
                                      .groups = 10,
                                      .chunks = 3,
                                      .arena_high_water_bytes = 128};
  prof::EngineCountersSnapshot after{.launches = 5,
                                     .inline_launches = 1,
                                     .groups = 40,
                                     .chunks = 9,
                                     .arena_high_water_bytes = 512};
  const auto d = after.delta_since(before);
  EXPECT_EQ(d.launches, 3u);
  EXPECT_EQ(d.inline_launches, 0u);
  EXPECT_EQ(d.groups, 30u);
  EXPECT_EQ(d.chunks, 6u);
  EXPECT_EQ(d.arena_high_water_bytes, 512u);  // level, not flow
}

TEST(ProfJson, ScalarAndContainerRoundTrip) {
  prof::Json obj = prof::Json::object();
  obj.set("name", "bin \"0\"\n");
  obj.set("count", std::int64_t{42});
  obj.set("ratio", 0.125);
  obj.set("on", true);
  obj.set("off", prof::Json());
  prof::Json arr = prof::Json::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  obj.set("items", arr);

  const auto parsed = prof::Json::parse(obj.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "bin \"0\"\n");
  EXPECT_EQ(parsed.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_number(), 0.125);
  EXPECT_TRUE(parsed.at("on").as_bool());
  EXPECT_TRUE(parsed.at("off").is_null());
  EXPECT_EQ(parsed.at("items").size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("items").at(1).as_number(), -2.5);
  // Compact and pretty dumps parse to the same document.
  EXPECT_EQ(prof::Json::parse(obj.dump(0)).dump(), parsed.dump());
}

TEST(ProfJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(prof::Json::parse(""), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(prof::Json::parse("nul"), std::runtime_error);
}

TEST(ProfRunProfile, JsonRoundTrip) {
  prof::RunProfile p;
  p.label = "cant";
  p.rows = 62451;
  p.cols = 62451;
  p.nnz = 4007383;
  p.plan = "U=100 {bin0:serial, bin3:subvector16}";
  p.plan_timing = {.features_s = 1e-4, .predict_s = 2e-5, .binning_s = 3e-4};
  p.add_bin_run(0, "serial", 625, 62451, 3000000, 0.002);
  p.add_bin_run(0, "serial", 625, 62451, 3000000, 0.001);  // second run
  p.add_bin_run(3, "subvector16", 10, 1000, 1007383, 0.0005);
  p.runs = 2;
  p.run_total_s = 0.0035;
  p.engine = {.launches = 4,
              .inline_launches = 1,
              .groups = 1024,
              .chunks = 256,
              .arena_high_water_bytes = 8192};
  p.add_candidate("U=100", 0.05, 18, 0.002);
  p.add_candidate("single-bin", 0.04, 9, 0.004);

  const auto restored =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(restored.label, p.label);
  EXPECT_EQ(restored.rows, p.rows);
  EXPECT_EQ(restored.nnz, p.nnz);
  EXPECT_EQ(restored.plan, p.plan);
  EXPECT_DOUBLE_EQ(restored.plan_timing.features_s, 1e-4);
  EXPECT_DOUBLE_EQ(restored.plan_timing.total_s(), p.plan_timing.total_s());
  ASSERT_EQ(restored.bins.size(), 2u);
  EXPECT_EQ(restored.bins[0].bin_id, 0);
  EXPECT_EQ(restored.bins[0].kernel, "serial");
  EXPECT_EQ(restored.bins[0].launches, 2u);  // merged across runs
  EXPECT_DOUBLE_EQ(restored.bins[0].seconds, 0.003);
  EXPECT_EQ(restored.bins[1].nnz, 1007383);
  EXPECT_EQ(restored.runs, 2u);
  EXPECT_EQ(restored.engine.groups, 1024u);
  EXPECT_EQ(restored.engine.arena_high_water_bytes, 8192u);
  ASSERT_EQ(restored.tuning.size(), 2u);
  EXPECT_EQ(restored.tuning[1].label, "single-bin");
  EXPECT_DOUBLE_EQ(restored.tuning_total_s, 0.09);
  // Serializing again is a fixed point.
  EXPECT_EQ(restored.to_json_text(), p.to_json_text());
}

TEST(ProfRunProfile, BinSamplesStaySortedByBinId) {
  prof::RunProfile p;
  p.add_bin_run(7, "vector", 1, 1, 10, 0.1);
  p.add_bin_run(2, "serial", 1, 1, 10, 0.1);
  p.add_bin_run(5, "subvector4", 1, 1, 10, 0.1);
  ASSERT_EQ(p.bins.size(), 3u);
  EXPECT_EQ(p.bins[0].bin_id, 2);
  EXPECT_EQ(p.bins[1].bin_id, 5);
  EXPECT_EQ(p.bins[2].bin_id, 7);
}

TEST(Tuner, BuildsProfiledRuntimeAndRecordsRuns) {
  prof::ScopedEnable on;
  const auto a = gen::power_law<float>(4000, 4000, 2.0, 200, /*seed=*/7);
  core::HeuristicPredictor pred;
  prof::RunProfile profile;
  const auto spmv =
      core::Tuner(a).predictor(pred).profile(&profile).build();

  // Plan description is recorded at build time.
  EXPECT_EQ(profile.rows, a.rows());
  EXPECT_EQ(profile.nnz, a.nnz());
  EXPECT_EQ(profile.plan, spmv.plan().to_string());
  EXPECT_GT(profile.plan_timing.features_s, 0.0);
  EXPECT_GT(profile.plan_timing.binning_s, 0.0);

  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) spmv.run(x, std::span<float>(y));

  EXPECT_EQ(profile.runs, static_cast<std::uint64_t>(kRuns));
  EXPECT_GT(profile.run_total_s, 0.0);
  ASSERT_FALSE(profile.bins.empty());
  std::int64_t bins_nnz = 0;
  for (const auto& b : profile.bins) {
    EXPECT_EQ(b.launches, static_cast<std::uint64_t>(kRuns));
    EXPECT_GT(b.seconds, 0.0);
    bins_nnz += b.nnz;
  }
  // The occupied bins partition the matrix.
  EXPECT_EQ(bins_nnz, static_cast<std::int64_t>(a.nnz()));
  EXPECT_GT(profile.engine.launches, 0u);
  EXPECT_GT(profile.engine.groups, 0u);

  // Correctness: matches the sequential reference.
  std::vector<float> expect(static_cast<std::size_t>(a.rows()));
  kernels::spmv_sequential(a, std::span<const float>(x),
                           std::span<float>(expect));
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_NEAR(expect[i], y[i], 1e-3f * (std::abs(expect[i]) + 1.0f));
}

TEST(Tuner, RunOverloadFillsCallerProfile) {
  const auto a = gen::banded<float>(2000, 9, 0.9, /*seed=*/3);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a).predictor(pred).build();
  EXPECT_EQ(spmv.profile(), nullptr);

  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  prof::RunProfile local;
  spmv.run(std::span<const float>(x), std::span<float>(y), &local);
  EXPECT_EQ(local.runs, 1u);
  EXPECT_FALSE(local.bins.empty());
}

TEST(Tuner, SchemeAndUnitOverrides) {
  const auto a = gen::power_law<float>(3000, 3000, 2.0, 100, /*seed=*/11);
  core::HeuristicPredictor pred;

  const auto single =
      core::Tuner(a).predictor(pred).scheme(binning::SchemeKind::SingleBin)
          .build();
  EXPECT_TRUE(single.plan().single_bin);
  ASSERT_EQ(single.plan().bin_kernels.size(), 1u);
  EXPECT_EQ(single.plan().bin_kernels[0].bin_id, 0);

  const auto fine =
      core::Tuner(a).predictor(pred).scheme(binning::SchemeKind::Fine).build();
  EXPECT_EQ(fine.plan().unit, 1);
  EXPECT_FALSE(fine.plan().single_bin);

  const auto forced = core::Tuner(a).predictor(pred).unit(50).build();
  EXPECT_EQ(forced.plan().unit, 50);

  EXPECT_THROW(core::Tuner(a).predictor(pred)
                   .scheme(binning::SchemeKind::Hybrid)
                   .build(),
               std::invalid_argument);
}

TEST(Tuner, ConfigurationErrors) {
  const auto a = gen::banded<float>(100, 3, 0.9, /*seed=*/1);
  EXPECT_THROW(core::Tuner(a).build(), std::logic_error);

  core::Plan plan;
  plan.unit = 10;
  plan.bin_kernels.push_back({0, kernels::KernelId::Serial});
  EXPECT_THROW(core::Tuner(a).plan(plan).unit(10).build(),
               std::invalid_argument);

  // plan() alone works and executes correctly.
  const auto spmv = core::Tuner(a).plan(plan).build();
  EXPECT_EQ(spmv.plan().unit, 10);
}

TEST(ExhaustiveTune, RecordsPerCandidateCost) {
  const auto a = gen::power_law<float>(2000, 2000, 2.0, 80, /*seed=*/5);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  core::CandidatePools pools;
  pools.units = {10, 100};
  pools.kernel_pool = {kernels::KernelId::Serial, kernels::KernelId::Sub8};
  pools.include_single_bin = true;

  prof::RunProfile profile;
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 0, .reps = 1, .max_total_s = 0.05};
  opts.profile = &profile;
  core::exhaustive_tune(clsim::default_engine(), a,
                        std::span<const float>(x), pools, opts);

  ASSERT_EQ(profile.tuning.size(), 3u);  // U=10, U=100, single-bin
  EXPECT_EQ(profile.tuning[0].label, "U=10");
  EXPECT_EQ(profile.tuning[1].label, "U=100");
  EXPECT_EQ(profile.tuning[2].label, "single-bin");
  for (const auto& c : profile.tuning) {
    EXPECT_GT(c.measure_s, 0.0);
    EXPECT_GT(c.measurements, 0);
    EXPECT_GT(c.best_s, 0.0);
  }
  EXPECT_GE(profile.tuning_total_s,
            profile.tuning[0].measure_s + profile.tuning[1].measure_s);
}

// Tests for the online-adaptation layer (spmv::adapt): bandit convergence
// on a rigged reward landscape, hysteresis under injected measurement
// noise, PlanStore round-trips and damage tolerance, cache promotion
// monotonicity, concurrent promotion vs eviction (tsan coverage), and the
// service-level warm-start / shutdown-ordering contracts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "adapt/bandit.hpp"
#include "adapt/plan_store.hpp"
#include "core/predictor.hpp"
#include "core/plan_io.hpp"
#include "core/tuner.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "gen/generators.hpp"
#include "kernels/reference.hpp"
#include "serve/fingerprint.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;
using namespace spmv::adapt;

template <typename T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Remove a store file before/after a test (ignore missing).
struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

core::Plan sample_plan() {
  core::Plan plan;
  plan.unit = 100;
  plan.revision = 2;
  plan.bin_kernels = {{0, kernels::KernelId::Serial},
                      {3, kernels::KernelId::Sub16}};
  return plan;
}

serve::Fingerprint sample_key() {
  // row_hash exercises the full 64-bit range — it must survive the JSON
  // round trip exactly (stored as hex, not as a double).
  return serve::Fingerprint{1000, 1000, 5000, 0xdeadbeefcafebabeULL};
}

// --- BanditTuner ----------------------------------------------------------

TEST(BanditTuner, ConvergesToRiggedBestKernel) {
  const auto a = gen::power_law<float>(2000, 2000, 2.0, 200, 7);
  core::Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 9);
  const auto key = serve::fingerprint_of(a);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;  // every observe() runs a trial
  opts.min_samples = 3;
  opts.hysteresis = 1.10;
  opts.hot_bins = 1;
  // Rigged registry: Sub16 is 10x everything else.
  opts.measure_override = [](kernels::KernelId id, int /*bin*/) {
    return id == kernels::KernelId::Sub16 ? 10.0 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  std::optional<BanditTuner<float>::Promotion> promo;
  int trials = 0;
  for (; trials < 200 && !promo.has_value(); ++trials)
    promo = tuner.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value()) << "no promotion within 200 trials";
  // Bounded convergence: one kernel is 10x better; with unexplored-first
  // exploration it needs at most pool-size * min_samples trials.
  EXPECT_LE(trials, 9 * 3 + 1);
  EXPECT_EQ(promo->plan.revision, plan.revision + 1);
  EXPECT_DOUBLE_EQ(promo->gflops, 10.0);

  // The hottest bin flipped to the rigged winner; other bins untouched.
  int changed = 0;
  for (std::size_t i = 0; i < plan.bin_kernels.size(); ++i) {
    if (promo->plan.bin_kernels[i].kernel != plan.bin_kernels[i].kernel) {
      EXPECT_EQ(promo->plan.bin_kernels[i].kernel, kernels::KernelId::Sub16);
      changed += 1;
    }
  }
  EXPECT_EQ(changed, 1);

  const auto s = tuner.stats();
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_GE(s.trials, 3u);
  EXPECT_GE(s.regret_s, 0.0);
}

TEST(BanditTuner, HysteresisBlocksFlappingUnderNoise) {
  const auto a = gen::power_law<float>(1500, 1500, 2.0, 150, 11);
  core::Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 13);
  const auto key = serve::fingerprint_of(a);

  // Challenger is genuinely ~5% faster but noisy (±2%); hysteresis demands
  // 10%, so it must never be promoted, no matter how many trials run.
  util::Xoshiro256 noise(17);
  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.min_samples = 3;
  opts.hysteresis = 1.10;
  opts.hot_bins = 1;
  opts.kernel_pool = {kernels::KernelId::Serial, kernels::KernelId::Sub2};
  opts.measure_override = [&noise](kernels::KernelId id, int /*bin*/) {
    const double base = id == kernels::KernelId::Sub2 ? 1.05 : 1.0;
    return base * noise.uniform(0.98, 1.02);
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  for (int i = 0; i < 300; ++i) {
    const auto promo = tuner.observe(key, plan, bins, a, x);
    EXPECT_FALSE(promo.has_value()) << "flapped on trial " << i;
  }
  const auto s = tuner.stats();
  EXPECT_EQ(s.promotions, 0u);
  EXPECT_EQ(s.trials, 300u);
}

TEST(BanditTuner, UnitExplorationPromotesRebinnedPlan) {
  const auto a = gen::power_law<float>(2000, 2000, 2.0, 200, 61);
  core::Plan plan;
  plan.unit = 100;
  plan.revision = 3;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 63);
  const auto key = serve::fingerprint_of(a);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_units = true;
  opts.unit_trial_fraction = 1.0;  // every trial is a U trial
  opts.unit_min_samples = 2;
  opts.unit_hysteresis = 1.10;
  opts.unit_pool = {100, 1000};  // one grid neighbor to climb to
  // Rigged: whole-plan throughput at U=1000 is 10x the incumbent's.
  opts.measure_unit_override = [](index_t u) {
    return u == 1000 ? 10.0 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  std::optional<BanditTuner<float>::Promotion> promo;
  int trials = 0;
  for (; trials < 50 && !promo.has_value(); ++trials)
    promo = tuner.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value()) << "no U promotion within 50 trials";
  EXPECT_LE(trials, opts.unit_min_samples + 1);

  // The promotion is a structural rebuild, not a kernel swap: new unit,
  // re-binned bin set, bumped revision, tuned-U provenance recording where
  // the lineage started.
  EXPECT_TRUE(promo->rebinned);
  EXPECT_EQ(promo->plan.unit, 1000);
  EXPECT_FALSE(promo->plan.single_bin);
  EXPECT_EQ(promo->plan.revision, plan.revision + 1);
  EXPECT_TRUE(promo->plan.unit_tuned);
  EXPECT_EQ(promo->plan.predicted_unit, 100);
  EXPECT_DOUBLE_EQ(promo->gflops, 10.0);
  // Every occupied bin at the NEW granularity has a kernel.
  const auto rebins = binning::bin_matrix(a, 1000);
  for (int b : rebins.occupied_bins())
    EXPECT_NO_THROW((void)promo->plan.kernel_for(b)) << "bin " << b;

  const auto s = tuner.stats();
  EXPECT_GE(s.u_trials, static_cast<std::uint64_t>(opts.unit_min_samples));
  EXPECT_EQ(s.u_promotions, 1u);
}

TEST(BanditTuner, UnitHysteresisAndCooldownPreventPingPong) {
  const auto a = gen::power_law<float>(1500, 1500, 2.0, 150, 67);
  core::Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 69);
  const auto key = serve::fingerprint_of(a);

  // Challenger U is 5% better; unit hysteresis demands 15%. Never promote.
  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_units = true;
  opts.unit_trial_fraction = 1.0;
  opts.unit_min_samples = 2;
  opts.unit_hysteresis = 1.15;
  opts.unit_pool = {100, 1000};
  opts.measure_unit_override = [](index_t u) {
    return u == 1000 ? 1.05 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(tuner.observe(key, plan, bins, a, x).has_value())
        << "U flapped on trial " << i;
  EXPECT_EQ(tuner.stats().u_promotions, 0u);

  // Cooldown: after a genuine promotion, the next `unit_cooldown` observe()
  // calls must not run U trials against the new incumbent.
  AdaptOptions copts = opts;
  copts.unit_hysteresis = 1.01;
  copts.unit_cooldown = 10;
  copts.measure_unit_override = [](index_t u) {
    return u == 1000 ? 10.0 : 1.0;
  };
  BanditTuner<float> cool(clsim::default_engine(), copts);
  std::optional<BanditTuner<float>::Promotion> promo;
  for (int i = 0; i < 50 && !promo.has_value(); ++i)
    promo = cool.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value());
  const auto u_trials_at_promo = cool.stats().u_trials;
  const auto newbins = binning::bin_matrix(a, promo->plan.unit);
  for (int i = 0; i < copts.unit_cooldown; ++i)
    (void)cool.observe(key, promo->plan, newbins, a, x);
  EXPECT_EQ(cool.stats().u_trials, u_trials_at_promo)
      << "U trials ran during the cooldown window";
  EXPECT_EQ(cool.stats().u_promotions, 1u);
}

TEST(BanditTuner, BackendExplorationPromotesRestampedPlan) {
  const auto a = gen::power_law<float>(1500, 1500, 2.0, 150, 71);
  core::Plan plan;
  plan.unit = 100;
  plan.revision = 5;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 73);
  const auto key = serve::fingerprint_of(a);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_backends = true;
  opts.backend_trial_fraction = 1.0;  // every trial is a backend trial
  opts.backend_min_samples = 2;
  opts.backend_hysteresis = 1.10;
  // Rigged: the native backend runs the whole plan 10x faster.
  opts.measure_backend_override = [](exec::BackendKind k) {
    return k == exec::BackendKind::Native ? 10.0 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  std::optional<BanditTuner<float>::Promotion> promo;
  int trials = 0;
  for (; trials < 50 && !promo.has_value(); ++trials)
    promo = tuner.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value()) << "no backend promotion within 50 trials";
  EXPECT_LE(trials, opts.backend_min_samples + 1);

  // The promotion is a pure re-stamp: same granularity and kernels, no
  // rebinning, bumped revision, the challenger backend on the plan.
  EXPECT_FALSE(promo->rebinned);
  EXPECT_EQ(promo->plan.backend, exec::BackendKind::Native);
  EXPECT_EQ(promo->plan.unit, plan.unit);
  EXPECT_EQ(promo->plan.revision, plan.revision + 1);
  ASSERT_EQ(promo->plan.bin_kernels.size(), plan.bin_kernels.size());
  for (std::size_t i = 0; i < plan.bin_kernels.size(); ++i)
    EXPECT_EQ(promo->plan.bin_kernels[i].kernel, plan.bin_kernels[i].kernel);
  EXPECT_DOUBLE_EQ(promo->gflops, 10.0);

  const auto s = tuner.stats();
  EXPECT_GE(s.b_trials,
            static_cast<std::uint64_t>(opts.backend_min_samples));
  EXPECT_EQ(s.b_promotions, 1u);

  // The backend counters survive the profile JSON round trip and reach
  // Prometheus.
  prof::RunProfile p;
  p.adapt = s;
  const auto parsed =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(parsed.adapt.b_trials, s.b_trials);
  EXPECT_EQ(parsed.adapt.b_promotions, s.b_promotions);
  EXPECT_NE(prof::prometheus_text(p).find("spmv_adapt_b_promotions_total"),
            std::string::npos);
}

TEST(BanditTuner, BackendHysteresisAndCooldownPreventFlapping) {
  const auto a = gen::power_law<float>(1200, 1200, 2.0, 120, 77);
  core::Plan plan;
  plan.unit = 100;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 79);
  const auto key = serve::fingerprint_of(a);

  // Native is genuinely ~10% faster but noisy (±2%); the backend swap
  // demands 25%, so it must never fire — a cross-engine switch invalidates
  // every kernel arm, making flapping far more expensive than a kernel
  // flap, hence the strictest hysteresis of the three arm levels.
  util::Xoshiro256 noise(81);
  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_backends = true;
  opts.backend_trial_fraction = 1.0;
  opts.backend_min_samples = 2;
  opts.backend_hysteresis = 1.25;
  opts.measure_backend_override = [&noise](exec::BackendKind k) {
    const double base = k == exec::BackendKind::Native ? 1.10 : 1.0;
    return base * noise.uniform(0.98, 1.02);
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);
  for (int i = 0; i < 200; ++i)
    EXPECT_FALSE(tuner.observe(key, plan, bins, a, x).has_value())
        << "backend flapped on trial " << i;
  EXPECT_EQ(tuner.stats().b_promotions, 0u);
  EXPECT_EQ(tuner.stats().b_trials, 200u);

  // Cooldown: after a genuine backend promotion, the next
  // `backend_cooldown` observe() calls must not run backend trials — the
  // fresh backend's kernel arms need samples before it can be challenged.
  AdaptOptions copts = opts;
  copts.backend_hysteresis = 1.05;
  copts.backend_cooldown = 10;
  copts.measure_backend_override = [](exec::BackendKind k) {
    return k == exec::BackendKind::Native ? 10.0 : 1.0;
  };
  copts.measure_override = [](kernels::KernelId, int /*bin*/) { return 1.0; };
  BanditTuner<float> cool(clsim::default_engine(), copts);
  std::optional<BanditTuner<float>::Promotion> promo;
  for (int i = 0; i < 50 && !promo.has_value(); ++i)
    promo = cool.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value());
  const auto b_trials_at_promo = cool.stats().b_trials;
  for (int i = 0; i < copts.backend_cooldown; ++i)
    (void)cool.observe(key, promo->plan, bins, a, x);
  EXPECT_EQ(cool.stats().b_trials, b_trials_at_promo)
      << "backend trials ran during the cooldown window";
  EXPECT_EQ(cool.stats().b_promotions, 1u);
}

TEST(BanditTuner, FormatExplorationPromotesRestampedBin) {
  // Near-uniform short rows: the estimator's challenger pool for every bin
  // contains ELL, and the rigged registry makes it 10x CSR.
  const auto a = gen::fixed_degree<float>(2000, 2000, 6, 91);
  core::Plan plan;
  plan.unit = 100;
  plan.revision = 7;
  plan.backend = exec::BackendKind::Native;  // format trials need a
                                             // format-capable backend
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 93);
  const auto key = serve::fingerprint_of(a);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_formats = true;
  opts.format_trial_fraction = 1.0;  // every trial is a format trial
  opts.format_min_samples = 2;
  opts.format_hysteresis = 1.10;
  opts.hot_bins = 1;
  opts.measure_format_override = [](int /*bin*/, fmt::FormatKind k) {
    return k == fmt::FormatKind::Ell ? 10.0 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  std::optional<BanditTuner<float>::Promotion> promo;
  int trials = 0;
  for (; trials < 50 && !promo.has_value(); ++trials)
    promo = tuner.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value()) << "no format promotion within 50 trials";
  // Bounded convergence: unexplored-first over at most kFormatCount - 1
  // challengers, each needing format_min_samples samples.
  EXPECT_LE(trials, (fmt::kFormatCount - 1) * opts.format_min_samples + 1);

  // The promotion is a one-bin format re-stamp: same granularity, kernels,
  // and backend; no rebinning; bumped revision.
  EXPECT_FALSE(promo->rebinned);
  EXPECT_EQ(promo->plan.unit, plan.unit);
  EXPECT_EQ(promo->plan.backend, plan.backend);
  EXPECT_EQ(promo->plan.revision, plan.revision + 1);
  EXPECT_TRUE(promo->plan.uses_formats());
  ASSERT_EQ(promo->plan.bin_kernels.size(), plan.bin_kernels.size());
  int changed = 0;
  for (std::size_t i = 0; i < plan.bin_kernels.size(); ++i) {
    EXPECT_EQ(promo->plan.bin_kernels[i].kernel, plan.bin_kernels[i].kernel);
    if (promo->plan.bin_kernels[i].format != fmt::FormatKind::Csr) {
      EXPECT_EQ(promo->plan.bin_kernels[i].format, fmt::FormatKind::Ell);
      changed += 1;
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_DOUBLE_EQ(promo->gflops, 10.0);

  const auto s = tuner.stats();
  EXPECT_GE(s.f_trials,
            static_cast<std::uint64_t>(opts.format_min_samples));
  EXPECT_EQ(s.f_promotions, 1u);

  // The format counters survive the profile JSON round trip and reach
  // Prometheus.
  prof::RunProfile p;
  p.adapt = s;
  const auto parsed =
      prof::RunProfile::from_json(prof::Json::parse(p.to_json_text()));
  EXPECT_EQ(parsed.adapt.f_trials, s.f_trials);
  EXPECT_EQ(parsed.adapt.f_promotions, s.f_promotions);
  EXPECT_NE(prof::prometheus_text(p).find("spmv_adapt_f_promotions_total"),
            std::string::npos);
}

TEST(BanditTuner, FormatHysteresisAndCooldownPreventFlapping) {
  const auto a = gen::fixed_degree<float>(1500, 1500, 5, 95);
  core::Plan plan;
  plan.unit = 100;
  plan.backend = exec::BackendKind::Native;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 97);
  const auto key = serve::fingerprint_of(a);

  // Challengers are genuinely ~5% faster but noisy (±2%); the format swap
  // demands 15%, so it must never fire — a layout change costs a
  // materialization, so marginal wins are not worth chasing.
  util::Xoshiro256 noise(99);
  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_formats = true;
  opts.format_trial_fraction = 1.0;
  opts.format_min_samples = 2;
  opts.format_hysteresis = 1.15;
  opts.hot_bins = 1;
  opts.measure_format_override = [&noise](int /*bin*/, fmt::FormatKind k) {
    const double base = k == fmt::FormatKind::Csr ? 1.0 : 1.05;
    return base * noise.uniform(0.98, 1.02);
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);
  for (int i = 0; i < 200; ++i)
    EXPECT_FALSE(tuner.observe(key, plan, bins, a, x).has_value())
        << "format flapped on trial " << i;
  EXPECT_EQ(tuner.stats().f_promotions, 0u);
  EXPECT_EQ(tuner.stats().f_trials, 200u);

  // Cooldown: after a genuine format promotion, the next `format_cooldown`
  // observe() calls must not run format trials against the new incumbent.
  AdaptOptions copts = opts;
  copts.format_hysteresis = 1.05;
  copts.format_cooldown = 10;
  copts.measure_format_override = [](int /*bin*/, fmt::FormatKind k) {
    return k == fmt::FormatKind::Ell ? 10.0 : 1.0;
  };
  copts.measure_override = [](kernels::KernelId, int /*bin*/) { return 1.0; };
  BanditTuner<float> cool(clsim::default_engine(), copts);
  std::optional<BanditTuner<float>::Promotion> promo;
  for (int i = 0; i < 50 && !promo.has_value(); ++i)
    promo = cool.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value());
  const auto f_trials_at_promo = cool.stats().f_trials;
  for (int i = 0; i < copts.format_cooldown; ++i)
    (void)cool.observe(key, promo->plan, bins, a, x);
  EXPECT_EQ(cool.stats().f_trials, f_trials_at_promo)
      << "format trials ran during the cooldown window";
  EXPECT_EQ(cool.stats().f_promotions, 1u);
}

TEST(BanditTuner, RejectedFormatsAreNegativeCachedNotRetried) {
  // A builder rejection is deterministic for a given bin: re-picking the
  // format would just re-run the failing transformation and re-log the
  // warning on every epsilon-greedy draw. The rejection sentinel (negative
  // measurement) must exclude the format after exactly one attempt, while
  // the surviving challengers keep exploring and can still promote.
  const auto a = gen::fixed_degree<float>(1500, 1500, 6, 107);
  core::Plan plan;
  plan.unit = 100;
  plan.backend = exec::BackendKind::Native;
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 109);
  const auto key = serve::fingerprint_of(a);

  // fixed_degree(6) pool per bin: {Csr, Ell, Dcsr} (COO is gated out by
  // the scatter signals). Rig Ell as builder-rejected, Dcsr as the winner.
  int ell_attempts = 0;
  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_formats = true;
  opts.format_trial_fraction = 1.0;
  opts.format_min_samples = 2;
  opts.format_hysteresis = 1.10;
  opts.hot_bins = 1;
  opts.epsilon = 0.5;  // heavy exploration: a non-cached reject WOULD recur
  opts.measure_format_override = [&ell_attempts](int /*bin*/,
                                                 fmt::FormatKind k) {
    if (k == fmt::FormatKind::Ell) {
      ell_attempts += 1;
      return -1.0;  // builder rejection sentinel
    }
    return k == fmt::FormatKind::Dcsr ? 10.0 : 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);

  std::optional<BanditTuner<float>::Promotion> promo;
  for (int i = 0; i < 100 && !promo.has_value(); ++i)
    promo = tuner.observe(key, plan, bins, a, x);
  ASSERT_TRUE(promo.has_value());
  EXPECT_EQ(ell_attempts, 1) << "rejected format was re-tried";
  for (const core::BinPlan& bp : promo->plan.bin_kernels)
    EXPECT_NE(bp.format, fmt::FormatKind::Ell);
  EXPECT_EQ(tuner.stats().f_promotions, 1u);
}

TEST(BanditTuner, FormatTrialsSkipFormatBlindBackends) {
  // A clsim-stamped plan cannot execute layouts, so the fourth arm level
  // must never divert — the trial budget stays with the kernel arms.
  const auto a = gen::fixed_degree<float>(1000, 1000, 4, 101);
  core::Plan plan;
  plan.unit = 100;  // backend stays the default (Clsim)
  const auto bins = binning::bin_matrix(a, 100);
  for (int b : bins.occupied_bins())
    plan.bin_kernels.push_back({b, kernels::KernelId::Serial});
  const auto x = random_vector<float>(static_cast<std::size_t>(a.cols()), 103);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.explore_formats = true;
  opts.format_trial_fraction = 1.0;
  opts.measure_override = [](kernels::KernelId, int /*bin*/) { return 1.0; };
  opts.measure_format_override = [](int, fmt::FormatKind) {
    ADD_FAILURE() << "format trial ran on a format-blind backend";
    return 1.0;
  };
  BanditTuner<float> tuner(clsim::default_engine(), opts);
  for (int i = 0; i < 30; ++i)
    (void)tuner.observe(serve::fingerprint_of(a), plan, bins, a, x);
  EXPECT_EQ(tuner.stats().f_trials, 0u);
  EXPECT_EQ(tuner.stats().trials, 30u);  // all 30 were kernel trials
}

TEST(BanditTuner, RealMeasurementsDoNotThrow) {
  // No override: trials time real kernel launches on the request's matrix.
  const auto a = gen::power_law<double>(1200, 1200, 2.0, 100, 19);
  core::HeuristicPredictor pred;
  const auto spmv = core::Tuner(a).predictor(pred).build();
  const auto x = random_vector<double>(static_cast<std::size_t>(a.cols()), 21);

  AdaptOptions opts;
  opts.trial_fraction = 1.0;
  opts.min_samples = 1;
  BanditTuner<double> tuner(clsim::default_engine(), opts);
  for (int i = 0; i < 10; ++i)
    (void)tuner.observe(serve::fingerprint_of(a), spmv.plan(), spmv.bins(), a,
                        x);
  EXPECT_EQ(tuner.stats().trials, 10u);
}

// --- Plan JSON round trip -------------------------------------------------

TEST(PlanIo, RoundTrip) {
  auto plan = sample_plan();
  plan.unit_tuned = true;
  plan.predicted_unit = 50000;
  const auto back = core::plan_from_json(core::plan_to_json(plan));
  EXPECT_EQ(back.unit, plan.unit);
  EXPECT_EQ(back.single_bin, plan.single_bin);
  EXPECT_EQ(back.revision, plan.revision);
  EXPECT_EQ(back.unit_tuned, plan.unit_tuned);
  EXPECT_EQ(back.predicted_unit, plan.predicted_unit);
  ASSERT_EQ(back.bin_kernels.size(), plan.bin_kernels.size());
  for (std::size_t i = 0; i < plan.bin_kernels.size(); ++i) {
    EXPECT_EQ(back.bin_kernels[i].bin_id, plan.bin_kernels[i].bin_id);
    EXPECT_EQ(back.bin_kernels[i].kernel, plan.bin_kernels[i].kernel);
  }
}

TEST(PlanIo, ProvenanceFieldsAreOptionalForOldArtifacts) {
  // A pre-provenance artifact (no unit_tuned / predicted_unit) must load
  // with the defaults.
  prof::Json j = core::plan_to_json(sample_plan());
  prof::Json stripped = prof::Json::object();
  for (const auto& [k, v] : j.members())
    if (k != "unit_tuned" && k != "predicted_unit") stripped.set(k, v);
  const auto back = core::plan_from_json(stripped);
  EXPECT_FALSE(back.unit_tuned);
  EXPECT_EQ(back.predicted_unit, 0);
}

// --- PlanStore ------------------------------------------------------------

TEST(PlanStore, RoundTripThroughDisk) {
  ScopedFile file("test_adapt_roundtrip.json");
  const auto key = sample_key();
  {
    PlanStore store(file.path);
    StoredPlan sp;
    sp.plan = sample_plan();
    sp.gflops = 3.5;
    sp.trials = 7;
    store.put(key, sp);
    store.flush();
  }
  PlanStore store(file.path);
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.lookup(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->plan.unit, 100);
  EXPECT_EQ(got->plan.revision, 2u);
  EXPECT_EQ(got->plan.kernel_for(3), kernels::KernelId::Sub16);
  EXPECT_DOUBLE_EQ(got->gflops, 3.5);
  EXPECT_EQ(got->trials, 7u);
  EXPECT_GT(got->saved_unix_ms, 0);  // stamped by put()
}

TEST(PlanStore, PutKeepsNewerRevision) {
  PlanStore store("unused_path.json");
  const auto key = sample_key();
  StoredPlan newer;
  newer.plan = sample_plan();  // revision 2
  store.put(key, newer);
  StoredPlan stale;
  stale.plan = sample_plan();
  stale.plan.revision = 1;
  stale.gflops = 99.0;
  store.put(key, stale);  // must lose
  EXPECT_EQ(store.lookup(key)->plan.revision, 2u);
  EXPECT_NE(store.lookup(key)->gflops, 99.0);
}

TEST(PlanStore, CorruptAndTruncatedFilesLoadEmpty) {
  for (const std::string damage :
       {std::string("{ this is not json"),
        std::string("{\"schema\": 1, \"entries\": [{\"dev"),
        std::string("[1, 2, 3]")}) {
    ScopedFile file("test_adapt_corrupt.json");
    {
      std::ofstream out(file.path);
      out << damage;
    }
    PlanStore store(file.path);
    const auto stats = store.load();  // must not throw
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(stats.skipped_malformed, 1u);
    EXPECT_EQ(store.size(), 0u);
  }
}

TEST(PlanStore, MissingFileIsEmptyStore) {
  PlanStore store("test_adapt_never_written.json");
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped_malformed, 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(PlanStore, ForeignSchemaSkippedWholesale) {
  ScopedFile file("test_adapt_schema.json");
  {
    std::ofstream out(file.path);
    out << "{\"schema\": 99, \"entries\": []}";
  }
  PlanStore store(file.path);
  const auto stats = store.load();
  EXPECT_EQ(stats.skipped_schema, 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(PlanStore, MalformedEntrySkippedOthersLoad) {
  ScopedFile file("test_adapt_partial.json");
  {
    PlanStore store(file.path);
    StoredPlan sp;
    sp.plan = sample_plan();
    store.put(sample_key(), sp);
    store.flush();
  }
  // Inject a broken entry alongside the good one.
  std::string text;
  {
    std::ifstream in(file.path);
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const auto pos = text.find("\"entries\": [");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + std::string("\"entries\": [").size(),
              "{\"device\": \"x\"},");
  {
    std::ofstream out(file.path, std::ios::trunc);
    out << text;
  }
  PlanStore store(file.path);
  const auto stats = store.load();
  EXPECT_EQ(stats.loaded, 1u);
  // The injected entry counts as malformed or foreign-device — either way
  // it is skipped, never fatal.
  EXPECT_EQ(stats.skipped_malformed + stats.skipped_device, 1u);
  EXPECT_TRUE(store.lookup(sample_key()).has_value());
}

TEST(PlanStore, ForeignDeviceAndModelEntriesPreservedAcrossFlush) {
  ScopedFile file("test_adapt_foreign.json");
  const std::string other_device = "cu=1 group=64 lds=1024";
  {
    PlanStore store(file.path, other_device, "model-A");
    StoredPlan sp;
    sp.plan = sample_plan();
    store.put(sample_key(), sp);
    store.flush();
  }
  // A store scoped to the default device sees nothing usable...
  PlanStore mine(file.path);
  const auto stats = mine.load();
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped_device, 1u);
  EXPECT_EQ(mine.size(), 0u);
  // ...but flush preserves the foreign entry for its owner.
  StoredPlan sp;
  sp.plan = sample_plan();
  serve::Fingerprint mine_key{5, 5, 5, 42};
  mine.put(mine_key, sp);
  mine.flush();
  {
    PlanStore theirs(file.path, other_device, "model-A");
    EXPECT_EQ(theirs.load().loaded, 1u);
    EXPECT_TRUE(theirs.lookup(sample_key()).has_value());
  }
  // gc() drops the preserved foreign entries; the next flush forgets them.
  PlanStore collector(file.path);
  collector.load();
  EXPECT_EQ(collector.gc(), 1u);
  collector.flush();
  {
    PlanStore theirs(file.path, other_device, "model-A");
    EXPECT_EQ(theirs.load().loaded, 0u);
  }
}

TEST(PlanStore, GcExpiredDropsStaleKeepsFreshAndForeign) {
  ScopedFile file("test_adapt_ttl.json");
  const std::string other_device = "cu=1 group=64 lds=1024";
  const std::int64_t now = 1'000'000'000;  // fixed clock: deterministic
  const std::int64_t hour = 3'600'000;
  {
    // A stale foreign entry — TTL gc must never touch other machines' work.
    PlanStore store(file.path, other_device, "model-A");
    StoredPlan sp;
    sp.plan = sample_plan();
    sp.saved_unix_ms = now - 100 * hour;
    sp.last_used_unix_ms = now - 100 * hour;
    store.put(sample_key(), sp);
    store.flush();
  }
  PlanStore store(file.path);
  store.load();
  const serve::Fingerprint stale_key{1, 1, 1, 11};
  const serve::Fingerprint fresh_key{2, 2, 2, 22};
  const serve::Fingerprint saved_only_key{3, 3, 3, 33};
  StoredPlan sp;
  sp.plan = sample_plan();
  sp.saved_unix_ms = now - 100 * hour;
  sp.last_used_unix_ms = now - 100 * hour;
  store.put(stale_key, sp);
  sp.last_used_unix_ms = now - hour;  // recurring fingerprint: stays
  store.put(fresh_key, sp);
  sp.saved_unix_ms = now - hour;  // no usage stamp, but recently saved
  sp.last_used_unix_ms = 0;       // put() backfills from save time
  store.put(saved_only_key, sp);

  EXPECT_EQ(store.gc_expired(24 * hour, now), 1u);  // only stale_key
  EXPECT_FALSE(store.lookup(stale_key).has_value());
  EXPECT_TRUE(store.lookup(fresh_key).has_value());
  EXPECT_TRUE(store.lookup(saved_only_key).has_value());

  // lookup() re-stamps usage, so a recurring fingerprint survives a TTL
  // shorter than its age-since-save.
  EXPECT_EQ(store.gc_expired(2 * hour, 0), 0u);

  // Negative TTL is a no-op guard.
  EXPECT_EQ(store.gc_expired(-1, now), 0u);

  // The foreign stale entry survived and is still flushed for its owner.
  store.flush();
  PlanStore theirs(file.path, other_device, "model-A");
  EXPECT_EQ(theirs.load().loaded, 1u);
}

TEST(PlanStore, ModelVersionScopesLookups) {
  ScopedFile file("test_adapt_model.json");
  {
    PlanStore store(file.path, PlanStore::device_config_string(), "v1");
    StoredPlan sp;
    sp.plan = sample_plan();
    store.put(sample_key(), sp);
    store.flush();
  }
  PlanStore v2(file.path, PlanStore::device_config_string(), "v2");
  const auto stats = v2.load();
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.skipped_model, 1u);
}

// --- PlanCache integration ------------------------------------------------

TEST(PlanCacheAdapt, WarmStartSkipsPredictor) {
  ScopedFile file("test_adapt_warmcache.json");
  core::HeuristicPredictor pred;
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(1000, 1000, 2.0, 120, 23));
  {
    PlanStore store(file.path);
    store.load();
    serve::PlanCache<float> cache(pred, clsim::default_engine(), 4, &store);
    EXPECT_NE(cache.get(a), nullptr);
    const auto s = cache.stats();
    EXPECT_EQ(s.planning_passes, 1u);
    EXPECT_EQ(s.warm_hits, 0u);
    store.flush();  // planning wrote through; persist it
  }
  PlanStore store(file.path);
  store.load();
  serve::PlanCache<float> cache(pred, clsim::default_engine(), 4, &store);
  EXPECT_NE(cache.get(a), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.warm_hits, 1u);
  EXPECT_EQ(s.planning_passes, 0u);
}

TEST(PlanCacheAdapt, PromoteIsMonotonicAndVisible) {
  core::HeuristicPredictor pred;
  serve::PlanCache<double> cache(pred, clsim::default_engine(), 4);
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::power_law<double>(900, 900, 2.0, 90, 29));
  const auto key = serve::fingerprint_of(*a);
  const auto first = cache.get(a);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->runtime.plan().revision, 0u);

  core::Plan improved = first->runtime.plan();
  improved.revision = 1;
  const auto promoted = cache.promote(key, improved, 2.0);
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->runtime.plan().revision, 1u);
  // Next get() serves the promoted entry.
  EXPECT_EQ(cache.get(a)->runtime.plan().revision, 1u);
  // Stale revision (== cached) is refused.
  EXPECT_EQ(cache.promote(key, improved, 2.0), nullptr);
  // Unknown key is refused.
  EXPECT_EQ(cache.promote(serve::Fingerprint{1, 1, 1, 1}, improved, 2.0),
            nullptr);
  EXPECT_EQ(cache.stats().promotions, 1u);

  // The promoted runtime still computes exactly.
  const auto x =
      random_vector<double>(static_cast<std::size_t>(a->cols()), 31);
  std::vector<double> y(static_cast<std::size_t>(a->rows()));
  const auto entry = cache.get(a);
  core::execute_plan(clsim::default_engine(), *a, std::span<const double>(x),
                     std::span<double>(y), entry->runtime.bins(),
                     entry->runtime.plan());
  const auto exact = kernels::spmv_exact(*a, std::span<const double>(x));
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
}

// A backend-swap promotion racing a kernel-arm promotion at the same
// revision: the cache's monotonic-revision rule lets exactly one land and
// refuses the other as stale. (tsan preset runs this under
// ThreadSanitizer.)
TEST(PlanCacheAdaptStress, BackendSwapRacesKernelPromotion) {
  core::HeuristicPredictor pred;
  serve::PlanCache<float> cache(pred, clsim::default_engine(), 4);
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(800, 800, 2.0, 80, 83));
  const auto key = serve::fingerprint_of(*a);
  const core::Plan base = cache.get(a)->runtime.plan();
  ASSERT_FALSE(base.bin_kernels.empty());

  core::Plan kernel_swap = base;
  kernel_swap.revision = base.revision + 1;
  kernel_swap.bin_kernels[0].kernel =
      kernel_swap.bin_kernels[0].kernel == kernels::KernelId::Serial
          ? kernels::KernelId::Sub2
          : kernels::KernelId::Serial;

  core::Plan backend_swap = base;
  backend_swap.revision = base.revision + 1;
  backend_swap.backend = exec::BackendKind::Native;

  std::shared_ptr<const serve::PlanCache<float>::Entry> kernel_won;
  std::shared_ptr<const serve::PlanCache<float>::Entry> backend_won;
  std::thread t1([&] { kernel_won = cache.promote(key, kernel_swap, 2.0); });
  std::thread t2([&] { backend_won = cache.promote(key, backend_swap, 2.0); });
  t1.join();
  t2.join();

  // Exactly one promotion landed; the loser saw the bumped revision.
  EXPECT_NE(kernel_won != nullptr, backend_won != nullptr);
  EXPECT_EQ(cache.stats().promotions, 1u);
  const auto entry = cache.get(a);
  EXPECT_EQ(entry->runtime.plan().revision, base.revision + 1);
  if (backend_won != nullptr) {
    EXPECT_EQ(entry->runtime.plan().backend, exec::BackendKind::Native);
  } else {
    EXPECT_EQ(entry->runtime.plan().backend, base.backend);
    EXPECT_EQ(entry->runtime.plan().bin_kernels[0].kernel,
              kernel_swap.bin_kernels[0].kernel);
  }

  // Whichever won, the cached runtime still computes exactly through the
  // backend its plan carries.
  const auto x =
      random_vector<float>(static_cast<std::size_t>(a->cols()), 87);
  std::vector<float> y(static_cast<std::size_t>(a->rows()));
  const auto backend = exec::shared_backend(entry->runtime.plan().backend);
  core::execute_plan(*backend, *a, std::span<const float>(x),
                     std::span<float>(y), entry->runtime.bins(),
                     entry->runtime.plan());
  const auto exact = kernels::spmv_exact(*a, std::span<const float>(x));
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], exact[i], 2e-4 * (std::abs(exact[i]) + 1.0));
}

// Promotions racing gets and LRU evictions: no crash, no deadlock, no
// torn entries (tsan preset runs this under ThreadSanitizer).
TEST(PlanCacheAdaptStress, ConcurrentPromotionVsEviction) {
  core::HeuristicPredictor pred;
  serve::PlanCache<float> cache(pred, clsim::default_engine(), 2);
  constexpr int kMatrices = 4;
  std::vector<std::shared_ptr<const CsrMatrix<float>>> mats;
  for (int i = 0; i < kMatrices; ++i)
    mats.push_back(std::make_shared<const CsrMatrix<float>>(
        gen::fixed_degree<float>(300 + 50 * i, 300, 3,
                                 static_cast<std::uint64_t>(37 + i))));
  const auto key0 = serve::fingerprint_of(*mats[0]);
  const core::Plan base = cache.get(mats[0])->runtime.plan();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_rev{1};
  std::thread promoter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      core::Plan p = base;
      p.revision = next_rev.fetch_add(1, std::memory_order_relaxed);
      (void)cache.promote(key0, p, 1.0);  // may lose to eviction: fine
    }
  });
  std::vector<std::thread> getters;
  for (int t = 0; t < 3; ++t) {
    getters.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(100 + t));
      for (int i = 0; i < 60; ++i) {
        const auto& m = mats[static_cast<std::size_t>(
            rng.next() % static_cast<std::uint64_t>(kMatrices))];
        EXPECT_NE(cache.get(m), nullptr);
      }
    });
  }
  for (auto& g : getters) g.join();
  stop.store(true, std::memory_order_relaxed);
  promoter.join();
  EXPECT_GT(cache.stats().evictions, 0u);
}

// --- SpmvService integration ----------------------------------------------

TEST(AdaptService, WarmStartAfterRestart) {
  ScopedFile file("test_adapt_service_warm.json");
  core::HeuristicPredictor pred;
  auto a = std::make_shared<const CsrMatrix<double>>(
      gen::mixed_regime<double>(800, 800, 0.4, 0.4, 2, 30, 200, 16, 41));
  const auto x =
      random_vector<double>(static_cast<std::size_t>(a->cols()), 43);
  const auto exact = kernels::spmv_exact(*a, std::span<const double>(x));

  {
    PlanStore store(file.path);
    serve::ServiceOptions opts;
    opts.plan_store = &store;
    serve::SpmvService<double> service(pred, opts);
    (void)service.run(a, x);
    const auto s = service.stats();
    EXPECT_EQ(s.planning_passes, 1u);
    EXPECT_EQ(s.cache_warm_hits, 0u);
    service.shutdown();  // flushes the store
  }

  // "Restarted process": a fresh store object over the same file.
  PlanStore store(file.path);
  serve::ServiceOptions opts;
  opts.plan_store = &store;
  serve::SpmvService<double> service(pred, opts);
  const auto y = service.run(a, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], exact[i], 1e-9 * (std::abs(exact[i]) + 1.0));
  const auto s = service.stats();
  EXPECT_EQ(s.planning_passes, 0u);  // known fingerprint: no re-planning
  EXPECT_GE(s.cache_warm_hits, 1u);
}

TEST(AdaptService, OnlinePromotionReachesTheCache) {
  core::HeuristicPredictor pred;
  serve::ServiceOptions opts;
  opts.workers = 2;
  AdaptOptions adapt;
  adapt.trial_fraction = 1.0;
  adapt.min_samples = 2;
  adapt.hot_bins = 1;
  // Rigged landscape: reward grows with the kernel id, so whatever the
  // predictor picked, a better challenger exists (unless it picked Vector,
  // which the heuristic never does for a power-law matrix).
  adapt.measure_override = [](kernels::KernelId id, int /*bin*/) {
    return 1.0 + static_cast<double>(id);
  };
  opts.adapt = adapt;
  prof::RunProfile profile;
  opts.profile = &profile;

  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(1500, 1500, 2.0, 150, 47));
  const auto n = static_cast<std::size_t>(a->cols());
  {
    serve::SpmvService<float> service(pred, opts);
    for (int i = 0; i < 120; ++i)
      (void)service.run(a, random_vector<float>(
                               n, 500 + static_cast<std::uint64_t>(i)));
    const auto s = service.stats();
    EXPECT_GE(s.cache_promotions, 1u);
  }  // destructor folds adapt stats into the profile

  EXPECT_GE(profile.adapt.trials, 2u);
  EXPECT_GE(profile.adapt.promotions, 1u);

  // The adapt section survives the JSON round trip and reaches Prometheus.
  const auto parsed =
      prof::RunProfile::from_json(prof::Json::parse(profile.to_json_text()));
  EXPECT_EQ(parsed.adapt.trials, profile.adapt.trials);
  EXPECT_EQ(parsed.adapt.promotions, profile.adapt.promotions);
  EXPECT_NE(prof::prometheus_text(profile).find("spmv_adapt_trials_total"),
            std::string::npos);
}

// Shutdown while trials are still in flight: the join must drain them
// before the store flush; no trial may touch a freed plan. (tsan preset
// runs this under ThreadSanitizer.)
TEST(AdaptService, ShutdownDrainsInflightTrials) {
  ScopedFile file("test_adapt_shutdown.json");
  core::HeuristicPredictor pred;
  PlanStore store(file.path);
  serve::ServiceOptions opts;
  opts.workers = 3;
  opts.plan_store = &store;
  AdaptOptions adapt;
  adapt.trial_fraction = 1.0;  // every request runs a real timed trial
  adapt.min_samples = 1;
  adapt.hysteresis = 1.0;  // promote eagerly: exercises promote-vs-shutdown
  opts.adapt = adapt;
  serve::SpmvService<float> service(pred, opts);

  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(1000, 1000, 2.0, 100, 53));
  const auto n = static_cast<std::size_t>(a->cols());
  std::vector<std::future<std::vector<float>>> futs;
  for (int i = 0; i < 40; ++i)
    futs.push_back(service.submit(
        a, random_vector<float>(n, 900 + static_cast<std::uint64_t>(i))));
  service.shutdown();  // join drains trials, then flushes the store
  for (auto& f : futs) EXPECT_FALSE(f.get().empty());

  // The flushed store is loadable and holds this fingerprint.
  PlanStore reopened(file.path);
  reopened.load();
  EXPECT_TRUE(reopened.lookup(serve::fingerprint_of(*a)).has_value());
}

}  // namespace

// Tests for row statistics (Table-I raw material) and ML feature vectors.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "ml/features.hpp"
#include "sparse/convert.hpp"
#include "sparse/matrix_stats.hpp"

namespace {

using namespace spmv;

CsrMatrix<double> ladder_matrix() {
  // Rows with 1, 2, 3, 4 non-zeros.
  CooMatrix<double> coo(4, 4);
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c <= r; ++c) coo.add(r, c, 1.0);
  }
  return coo_to_csr(std::move(coo));
}

TEST(RowStatsT, LadderMatrix) {
  const auto stats = compute_row_stats(ladder_matrix());
  EXPECT_EQ(stats.rows, 4);
  EXPECT_EQ(stats.cols, 4);
  EXPECT_EQ(stats.nnz, 10);
  EXPECT_DOUBLE_EQ(stats.avg_nnz, 2.5);
  EXPECT_NEAR(stats.var_nnz, 1.25, 1e-12);  // population variance
  EXPECT_EQ(stats.min_nnz, 1);
  EXPECT_EQ(stats.max_nnz, 4);
}

TEST(RowStatsT, UniformRowsHaveZeroVariance) {
  const auto a = gen::fixed_degree<double>(100, 50, 3, 1);
  const auto stats = compute_row_stats(a);
  EXPECT_DOUBLE_EQ(stats.avg_nnz, 3.0);
  EXPECT_DOUBLE_EQ(stats.var_nnz, 0.0);
  EXPECT_EQ(stats.min_nnz, 3);
  EXPECT_EQ(stats.max_nnz, 3);
}

TEST(RowStatsT, RowLengths) {
  const auto lengths = row_lengths(ladder_matrix());
  EXPECT_EQ(lengths, (std::vector<offset_t>{1, 2, 3, 4}));
}

TEST(RowStatsT, HistogramAccumulation) {
  util::Histogram hist({0, 2, 4});
  accumulate_row_histogram(ladder_matrix(), hist);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.bucket(0), 1u);  // row with 1 nnz
  EXPECT_EQ(hist.bucket(1), 2u);  // rows with 2, 3
  EXPECT_EQ(hist.bucket(2), 1u);  // row with 4
}

TEST(Features, Stage1NamesMatchTable1) {
  const auto& names = ml::stage1_attr_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "M");
  EXPECT_EQ(names[1], "N");
  EXPECT_EQ(names[2], "NNZ");
  EXPECT_EQ(names[3], "Var_NNZ");
  EXPECT_EQ(names[4], "Avg_NNZ");
  EXPECT_EQ(names[5], "Min_NNZ");
  EXPECT_EQ(names[6], "Max_NNZ");
}

TEST(Features, Stage1VectorOrder) {
  const auto stats = compute_row_stats(ladder_matrix());
  const auto f = ml::stage1_features(stats);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f[0], 4.0);
  EXPECT_DOUBLE_EQ(f[1], 4.0);
  EXPECT_DOUBLE_EQ(f[2], 10.0);
  EXPECT_NEAR(f[3], 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(f[4], 2.5);
  EXPECT_DOUBLE_EQ(f[5], 1.0);
  EXPECT_DOUBLE_EQ(f[6], 4.0);
}

TEST(Features, Stage2AppendsUnitAndBin) {
  const auto stats = compute_row_stats(ladder_matrix());
  const auto f = ml::stage2_features(stats, 100, 7);
  ASSERT_EQ(f.size(), 9u);
  EXPECT_DOUBLE_EQ(f[7], 100.0);
  EXPECT_DOUBLE_EQ(f[8], 7.0);
  const auto& names = ml::stage2_attr_names();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names[7], "U");
  EXPECT_EQ(names[8], "binId");
}

}  // namespace

// Tests for the C5.0-style boosting trials.
#include <gtest/gtest.h>

#include "ml/boosting.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv::ml;

Dataset noisy_bands(int n, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"a", "b", "c"});
  spmv::util::Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    int label = x < 0.33 ? 0 : x < 0.66 ? 1 : 2;
    if (rng.uniform() < 0.2) label = (label + 1) % 3;  // random label noise
    data.add({x, y}, label);
  }
  return data;
}

TEST(Boosting, SingleTrialMatchesPlainTree) {
  const auto data = noisy_bands(400, 1);
  BoostedTrees boosted;
  boosted.train(data, 1);
  DecisionTree plain;
  plain.train(data);
  EXPECT_EQ(boosted.trial_count(), 1u);
  std::size_t disagree = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (boosted.predict(data.features(i)) != plain.predict(data.features(i)))
      ++disagree;
  }
  EXPECT_EQ(disagree, 0u);
}

TEST(Boosting, ImprovesOrMatchesTrainingFit) {
  const auto data = noisy_bands(600, 2);
  DecisionTree plain;
  TreeParams shallow;
  shallow.max_depth = 3;
  plain.train(data, shallow);
  BoostedTrees boosted;
  boosted.train(data, 10, shallow);
  EXPECT_LE(boosted.error_rate(data), plain.error_rate(data) + 0.05);
  EXPECT_GT(boosted.trial_count(), 1u);
}

TEST(Boosting, PredictionsAreValidLabels) {
  const auto data = noisy_bands(300, 3);
  BoostedTrees boosted;
  boosted.train(data, 5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int p = boosted.predict(data.features(i));
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(Boosting, StopsEarlyOnPerfectFit) {
  Dataset data({"x"}, {"a", "b"});
  for (int i = 0; i < 100; ++i)
    data.add({static_cast<double>(i)}, i < 50 ? 0 : 1);
  BoostedTrees boosted;
  boosted.train(data, 25);
  EXPECT_LT(boosted.trial_count(), 25u);  // perfect after trial 1
  EXPECT_EQ(boosted.error_rate(data), 0.0);
}

TEST(Boosting, RejectsBadArguments) {
  Dataset data({"x"}, {"a", "b"});
  BoostedTrees boosted;
  EXPECT_THROW(boosted.train(data, 3), std::invalid_argument);  // empty
  data.add({1.0}, 0);
  EXPECT_THROW(boosted.train(data, 0), std::invalid_argument);  // trials<1
}

TEST(Boosting, UntrainedPredictThrows) {
  BoostedTrees boosted;
  EXPECT_THROW(boosted.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(Boosting, GeneralizationNotWorseThanSingleTree) {
  auto data = noisy_bands(1500, 4);
  const auto [train, test] = data.split(0.7, 5);
  DecisionTree plain;
  plain.train(train);
  BoostedTrees boosted;
  boosted.train(train, 8);
  EXPECT_LE(boosted.error_rate(test), plain.error_rate(test) + 0.05);
}

}  // namespace

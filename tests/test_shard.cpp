// spmv::shard: partition invariants (coverage, nnz balance, locality
// search), extract_shard fidelity, FairQueue DRR ratios / per-tenant quota
// rejections / fifo baseline, the ShardedService end-to-end contracts
// (reference-accurate results, bit-exact scatter-gather against per-shard
// standalone runtimes, plan-store warm starts with shard provenance,
// per-tenant/per-shard stats blocks, admission rejections), sharded-plan
// JSON round trips, the obs sink's per-producer-group rings, and the
// perf-trajectory learned threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "autospmv.hpp"

using namespace spmv;

namespace {

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

/// Fresh per-test obs segment directory (same idiom as test_obs).
class ObsDir {
 public:
  explicit ObsDir(const std::string& name)
      : path_(::testing::TempDir() + "/autospmv_shard_" + name) {
    std::filesystem::remove_all(path_);
  }
  ~ObsDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<prof::Json> read_records(const std::vector<std::string>& files) {
  std::vector<prof::Json> out;
  for (const auto& f : files) {
    std::ifstream in(f);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(prof::Json::parse(line));
    }
  }
  return out;
}

std::vector<float> random_x(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// The suite's mixed-regime workload: short/mid/long row blocks so the K
/// shards see genuinely different structure.
std::shared_ptr<const CsrMatrix<float>> mixed_matrix(index_t rows,
                                                     std::uint64_t seed) {
  return std::make_shared<const CsrMatrix<float>>(
      gen::mixed_regime<float>(rows, rows, 0.6, 0.32, 4, 30, 60, 32, seed));
}

/// Random CSR with a random row-length regime (partition fuzzing).
CsrMatrix<double> random_csr(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto rows = static_cast<index_t>(1 + rng.bounded(200));
  const auto cols = static_cast<index_t>(1 + rng.bounded(200));
  CooMatrix<double> coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    auto len = static_cast<index_t>(rng.bounded(8));
    if (rng.uniform() < 0.1)
      len = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(cols)));
    len = std::min(len, cols);
    for (index_t k = 0; k < len; ++k)
      coo.add(r, static_cast<index_t>(rng.bounded(
                     static_cast<std::uint64_t>(cols))),
              rng.uniform(-1.0, 1.0));
  }
  return coo_to_csr(std::move(coo));
}

void expect_partition_invariants(const CsrMatrix<double>& a,
                                 const std::vector<shard::ShardRange>& ranges,
                                 const std::string& note) {
  ASSERT_FALSE(ranges.empty()) << note;
  ASSERT_EQ(ranges.front().row_begin, 0) << note;
  ASSERT_EQ(ranges.back().row_end, a.rows()) << note;
  offset_t nnz = 0;
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    if (s > 0) {
      ASSERT_EQ(ranges[s].row_begin, ranges[s - 1].row_end) << note;
    }
    ASSERT_LE(ranges[s].row_begin, ranges[s].row_end) << note;
    ASSERT_EQ(ranges[s].nnz,
              a.row_ptr()[static_cast<std::size_t>(ranges[s].row_end)] -
                  a.row_ptr()[static_cast<std::size_t>(ranges[s].row_begin)])
        << note;
    nnz += ranges[s].nnz;
  }
  ASSERT_EQ(nnz, a.nnz()) << note;
}

}  // namespace

// ---------------------------------------------------------------------------
// Partitioner

TEST(ShardPartition, CoversRowsAndBalancesNnz) {
  const auto a = convert_values<double>(*mixed_matrix(4000, 11));
  shard::PartitionOptions opts;
  opts.shards = 4;
  const auto ranges = shard::partition_rows(a, opts);
  ASSERT_EQ(ranges.size(), 4u);
  expect_partition_invariants(a, ranges, "K=4 mixed");
  // Balance: no shard beyond 1.5x the ideal nnz share (the locality search
  // trades a bounded amount of imbalance, never more).
  const double ideal = static_cast<double>(a.nnz()) / 4.0;
  for (const auto& r : ranges) {
    EXPECT_LT(static_cast<double>(r.nnz), 1.5 * ideal)
        << "shard [" << r.row_begin << ", " << r.row_end << ")";
    EXPECT_GT(r.rows(), 0);
  }
}

TEST(ShardPartition, RandomizedInvariantsAndClamping) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto a = random_csr(seed * 7919);
    for (int k : {1, 2, 3, 7, 1000}) {
      shard::PartitionOptions opts;
      opts.shards = k;
      const auto ranges = shard::partition_rows(a, opts);
      const auto note = "seed " + std::to_string(seed) + " K=" +
                        std::to_string(k) + " rows=" +
                        std::to_string(a.rows());
      // K clamps to [1, rows]: never more shards than rows, never zero.
      ASSERT_LE(ranges.size(),
                static_cast<std::size_t>(std::max<index_t>(1, a.rows())))
          << note;
      expect_partition_invariants(a, ranges, note);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ShardPartition, PurePrefixCutsStayWithinOneRowOfIdeal) {
  const auto a = convert_values<double>(*mixed_matrix(3000, 5));
  shard::PartitionOptions opts;
  opts.shards = 5;
  opts.locality_weight = 0.0;  // disable the local search entirely
  const auto ranges = shard::partition_rows(a, opts);
  expect_partition_invariants(a, ranges, "pure prefix cuts");
  // With the locality term off, every cut sits on the nnz prefix sum: a
  // prefix shard's cumulative nnz overshoots its ideal share by less than
  // the heaviest single row (the prefix-sum cut granularity).
  offset_t max_row = 0;
  for (index_t r = 0; r < a.rows(); ++r)
    max_row = std::max(max_row,
                       a.row_ptr()[static_cast<std::size_t>(r) + 1] -
                           a.row_ptr()[static_cast<std::size_t>(r)]);
  offset_t cum = 0;
  for (std::size_t s = 0; s + 1 < ranges.size(); ++s) {
    cum += ranges[s].nnz;
    const double ideal = static_cast<double>(a.nnz()) *
                         static_cast<double>(s + 1) /
                         static_cast<double>(ranges.size());
    EXPECT_LT(std::abs(static_cast<double>(cum) - ideal),
              static_cast<double>(max_row) + 1.0)
        << "cut " << s;
  }
}

TEST(ShardPartition, ExtractShardReproducesParentRows) {
  const auto a = random_csr(0xE47);
  shard::PartitionOptions opts;
  opts.shards = 3;
  const auto set = shard::plan_shards(a, opts);
  ASSERT_EQ(set.count(), static_cast<int>(set.ranges.size()));
  ASSERT_EQ(set.matrices.size(), set.ranges.size());
  ASSERT_EQ(set.fingerprints.size(), set.ranges.size());
  EXPECT_EQ(set.parent_hash, serve::fingerprint_of(a).row_hash);
  for (std::size_t s = 0; s < set.ranges.size(); ++s) {
    const auto& range = set.ranges[s];
    const auto& sub = *set.matrices[s];
    ASSERT_EQ(sub.rows(), range.rows());
    ASSERT_EQ(sub.cols(), a.cols());  // every shard multiplies the full x
    ASSERT_EQ(sub.nnz(), range.nnz);
    ASSERT_EQ(set.fingerprints[s], serve::fingerprint_of(sub));
    for (index_t r = 0; r < sub.rows(); ++r) {
      const auto parent_row = static_cast<std::size_t>(range.row_begin + r);
      const auto pb = a.row_ptr()[parent_row];
      const auto pe = a.row_ptr()[parent_row + 1];
      const auto sb = sub.row_ptr()[static_cast<std::size_t>(r)];
      ASSERT_EQ(pe - pb, sub.row_ptr()[static_cast<std::size_t>(r) + 1] - sb);
      for (offset_t i = 0; i < pe - pb; ++i) {
        ASSERT_EQ(sub.col_idx()[static_cast<std::size_t>(sb + i)],
                  a.col_idx()[static_cast<std::size_t>(pb + i)]);
        ASSERT_EQ(sub.vals()[static_cast<std::size_t>(sb + i)],
                  a.vals()[static_cast<std::size_t>(pb + i)]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FairQueue

TEST(FairQueue, DrrServesBacklogProportionallyToWeights) {
  shard::FairQueue<int> q({{"heavy", 3.0}, {"light", 1.0}},
                          shard::QueuePolicy::Fair, 100);
  const std::size_t heavy = q.tenant_index("heavy");
  const std::size_t light = q.tenant_index("light");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(q.push(heavy, i));
    if (i < 10) {
      ASSERT_TRUE(q.push(light, 100 + i));
    }
  }
  // Both backlogged for the first 40 pops: DRR must serve 3:1.
  int got_heavy = 0;
  int got_light = 0;
  int window_light = 0;
  for (int i = 0; i < 40; ++i) {
    int item = -1;
    std::size_t tenant = 99;
    ASSERT_TRUE(q.pop(&item, &tenant));
    (tenant == heavy ? got_heavy : got_light) += 1;
    // Starvation bound: the light tenant is served at least once in any
    // aligned window of 4 pops.
    window_light += tenant == light ? 1 : 0;
    if (i % 4 == 3) {
      EXPECT_GE(window_light, 1) << "pops " << i - 3 << ".." << i;
      window_light = 0;
    }
  }
  EXPECT_EQ(got_heavy, 30);
  EXPECT_EQ(got_light, 10);
  EXPECT_EQ(q.counters(heavy).dispatched, 30u);
  EXPECT_EQ(q.counters(light).dispatched, 10u);
  // Drain the rest; the queue must hand everything back exactly once.
  int item = 0;
  std::size_t n = 0;
  while (q.pop(&item)) n += 1;
  EXPECT_EQ(n, 10u);
  EXPECT_TRUE(q.empty());
}

TEST(FairQueue, QuotaBouncesTheFlooderAndKeepsOtherSlotsFree) {
  shard::FairQueue<int> q({{"a", 1.0}, {"b", 1.0}}, shard::QueuePolicy::Fair,
                          8);
  const std::size_t a = q.tenant_index("a");
  const std::size_t b = q.tenant_index("b");
  EXPECT_EQ(q.quota(a), 4u);
  EXPECT_EQ(q.quota(b), 4u);
  int accepted = 0;
  for (int i = 0; i < 6; ++i) accepted += q.push(a, i) ? 1 : 0;
  EXPECT_EQ(accepted, 4);  // a's quota, not the global bound
  EXPECT_EQ(q.counters(a).rejected, 2u);
  // b's slots stayed free despite a's flood.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(b, i));
  EXPECT_EQ(q.counters(b).rejected, 0u);
  // Now the global high water is reached: everyone bounces.
  EXPECT_FALSE(q.push(b, 99));
  EXPECT_EQ(q.counters(b).rejected, 1u);
  EXPECT_EQ(q.size(), 8u);
}

TEST(FairQueue, FifoPreservesGlobalArrivalOrder) {
  shard::FairQueue<int> q({{"a", 5.0}, {"b", 1.0}}, shard::QueuePolicy::Fifo,
                          16);
  const std::size_t a = q.tenant_index("a");
  const std::size_t b = q.tenant_index("b");
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i % 2 == 0 ? a : b, i));
  for (int i = 0; i < 10; ++i) {
    int item = -1;
    std::size_t tenant = 99;
    ASSERT_TRUE(q.pop(&item, &tenant));
    EXPECT_EQ(item, i);  // arrival order, weights ignored
    EXPECT_EQ(tenant, i % 2 == 0 ? a : b);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FairQueue, UnknownTenantThrowsAndDefaultRosterExists) {
  shard::FairQueue<int> q({}, shard::QueuePolicy::Fair, 4);
  EXPECT_EQ(q.tenant_count(), 1u);
  EXPECT_NO_THROW((void)q.tenant_index("default"));
  EXPECT_THROW((void)q.tenant_index("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ShardedService

TEST(ShardedService, MatchesReferenceAndScatterGatherIsLossless) {
  const auto a = mixed_matrix(2000, 3);
  const auto ad = convert_values<double>(*a);
  const core::HeuristicPredictor pred;
  shard::ShardedOptions opts;
  opts.partition.shards = 3;
  shard::ShardedService<float> service(a, pred, opts);

  const auto x = random_x(static_cast<std::size_t>(a->cols()), 77);
  const std::vector<double> xd(x.begin(), x.end());
  const auto exact = kernels::spmv_exact(ad, std::span<const double>(xd));
  const std::vector<float> y = service.run("default", x);
  ASSERT_EQ(y.size(), static_cast<std::size_t>(a->rows()));
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double scale = std::abs(exact[i]) + 1.0;
    ASSERT_NEAR(static_cast<double>(y[i]), exact[i], 2e-4 * scale)
        << "row " << i;
  }

  // Scatter-gather must be lossless: each shard's slice of y is BIT-equal
  // to a standalone runtime built from the same sub-matrix and the same
  // plan (row results are shard-local, so assembly may not perturb them).
  const auto infos = service.shard_infos();
  ASSERT_EQ(infos.size(), 3u);
  for (const auto& info : infos) {
    const auto& sub = *service.shards().matrices[static_cast<std::size_t>(
        info.index)];
    const auto rt = core::Tuner<float>(sub).plan(info.plan).build();
    std::vector<float> ys(static_cast<std::size_t>(sub.rows()));
    rt.run(std::span<const float>(x), std::span<float>(ys));
    for (std::size_t r = 0; r < ys.size(); ++r) {
      ASSERT_EQ(y[static_cast<std::size_t>(info.range.row_begin) + r], ys[r])
          << "shard " << info.index << " local row " << r
          << " differs bit-for-bit";
    }
  }
  service.shutdown();
}

TEST(ShardedService, PlanStoreWarmStartCarriesShardProvenance) {
  ScopedFile f("shard_store.tmp.json");
  const auto a = mixed_matrix(1500, 9);
  const core::HeuristicPredictor pred;
  constexpr int kShards = 3;

  prof::RunProfile profile1;
  std::uint64_t parent = 0;
  {
    adapt::PlanStore store(f.path);
    shard::ShardedOptions opts;
    opts.partition.shards = kShards;
    opts.plan_store = &store;
    opts.profile = &profile1;
    shard::ShardedService<float> service(a, pred, opts);
    parent = service.shards().parent_hash;
    (void)service.run("default",
                      random_x(static_cast<std::size_t>(a->cols()), 1));
    for (const auto& info : service.shard_infos()) {
      EXPECT_FALSE(info.warm_start);
      EXPECT_EQ(info.plan.shard_index, info.index);
      EXPECT_EQ(info.plan.shard_count, kShards);
      EXPECT_EQ(info.plan.shard_parent, parent);
    }
    service.shutdown();
    // Every shard wrote its plan through, provenance included.
    for (const auto& fp : service.shards().fingerprints) {
      const auto sp = store.lookup(fp);
      ASSERT_TRUE(sp.has_value());
      EXPECT_EQ(sp->plan.shard_count, kShards);
      EXPECT_EQ(sp->plan.shard_parent, parent);
    }
  }
  EXPECT_EQ(profile1.serve.planning_passes, static_cast<std::uint64_t>(kShards));

  prof::RunProfile profile2;
  {
    adapt::PlanStore store(f.path);
    shard::ShardedOptions opts;
    opts.partition.shards = kShards;
    opts.plan_store = &store;
    opts.profile = &profile2;
    shard::ShardedService<float> service(a, pred, opts);
    for (const auto& info : service.shard_infos())
      EXPECT_TRUE(info.warm_start) << "shard " << info.index;
    (void)service.run("default",
                      random_x(static_cast<std::size_t>(a->cols()), 2));
    service.shutdown();
  }
  EXPECT_EQ(profile2.serve.planning_passes, 0u);
  EXPECT_EQ(profile2.serve.cache_warm_hits,
            static_cast<std::uint64_t>(kShards));
}

TEST(ShardedService, StatsCarryPerTenantAndPerShardBlocks) {
  const auto a = mixed_matrix(1200, 21);
  const core::HeuristicPredictor pred;
  shard::ShardedOptions opts;
  opts.partition.shards = 2;
  opts.tenants = {{"interactive", 4.0}, {"batch", 1.0}};
  shard::ShardedService<float> service(a, pred, opts);
  for (int i = 0; i < 4; ++i)
    (void)service.run("interactive",
                      random_x(static_cast<std::size_t>(a->cols()),
                               static_cast<std::uint64_t>(i)));
  for (int i = 0; i < 2; ++i)
    (void)service.run("batch",
                      random_x(static_cast<std::size_t>(a->cols()),
                               static_cast<std::uint64_t>(100 + i)));
  const prof::ServeStats s = service.stats();
  service.shutdown();

  ASSERT_EQ(s.tenants.size(), 2u);
  const auto& ti = s.tenants[0].name == "interactive" ? s.tenants[0]
                                                      : s.tenants[1];
  const auto& tb = s.tenants[0].name == "interactive" ? s.tenants[1]
                                                      : s.tenants[0];
  EXPECT_EQ(ti.name, "interactive");
  EXPECT_DOUBLE_EQ(ti.weight, 4.0);
  EXPECT_EQ(ti.requests, 4u);
  EXPECT_EQ(tb.requests, 2u);
  EXPECT_EQ(ti.rejected, 0u);
  EXPECT_EQ(ti.latency.count(), 4u);
  EXPECT_EQ(tb.latency.count(), 2u);

  ASSERT_EQ(s.shards.size(), 2u);
  for (const auto& sh : s.shards) {
    EXPECT_EQ(sh.executions, 6u);  // every request fans out to every shard
    EXPECT_GT(sh.nnz, 0);
    EXPECT_FALSE(sh.plan.empty());
    EXPECT_NE(sh.plan.find("shard"), std::string::npos)
        << "plan string must carry shard provenance: " << sh.plan;
  }
  EXPECT_EQ(s.requests, 6u);
}

TEST(ShardedService, AdmissionBouncesAreCountedPerTenant) {
  const auto a = mixed_matrix(2500, 31);
  const core::HeuristicPredictor pred;
  shard::ShardedOptions opts;
  opts.partition.shards = 2;
  opts.queue_high_water = 1;
  opts.dispatch_window = 1;
  shard::ShardedService<float> service(a, pred, opts);

  const auto x = random_x(static_cast<std::size_t>(a->cols()), 5);
  constexpr int kSubmitted = 32;
  std::vector<std::future<std::vector<float>>> futs;
  int rejected = 0;
  for (int i = 0; i < kSubmitted; ++i) {
    try {
      futs.push_back(service.submit("default", x));
    } catch (const serve::QueueFullError&) {
      rejected += 1;
    }
  }
  for (auto& f : futs) (void)f.get();
  const prof::ServeStats s = service.stats();
  service.shutdown();

  // Back-to-back submission against a high water of 1 cannot all be
  // admitted: the worker would have to complete ~all requests while the
  // submit loop runs.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kSubmitted - rejected));
  EXPECT_EQ(s.rejected, static_cast<std::uint64_t>(rejected));
  ASSERT_EQ(s.tenants.size(), 1u);
  EXPECT_EQ(s.tenants[0].rejected, static_cast<std::uint64_t>(rejected));
}

// ---------------------------------------------------------------------------
// Sharded-plan JSON provenance

TEST(ShardPlanIo, ProvenanceRoundTripsAndUnshardedStaysBare) {
  const auto a = mixed_matrix(600, 1);
  const core::HeuristicPredictor pred;
  const auto rt = core::Tuner<float>(*a).predictor(pred).build();
  core::Plan plan = rt.plan();

  // Unsharded: the JSON artifact keeps the pre-shard shape.
  const prof::Json bare = core::plan_to_json(plan);
  EXPECT_EQ(bare.find("shard_index"), nullptr);
  const core::Plan bare_back = core::plan_from_json(bare);
  EXPECT_EQ(bare_back.shard_index, -1);

  plan.shard_index = 2;
  plan.shard_count = 4;
  plan.shard_parent = 0xDEADBEEFCAFEF00DULL;
  const prof::Json j = core::plan_to_json(plan);
  const core::Plan back = core::plan_from_json(j);
  EXPECT_EQ(back.shard_index, 2);
  EXPECT_EQ(back.shard_count, 4);
  EXPECT_EQ(back.shard_parent, 0xDEADBEEFCAFEF00DULL);
  EXPECT_NE(back.to_string().find("shard 2/4"), std::string::npos)
      << back.to_string();

  // Tampered provenance (index beyond count) must not load.
  prof::Json bad = core::plan_to_json(plan);
  bad.set("shard_count", 2);
  EXPECT_THROW((void)core::plan_from_json(bad), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Obs sink producer groups

TEST(ShardObs, ProducerGroupsRouteToOwnRingsWithPerRingDropAccounting) {
  ObsDir dir("rings");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.producer_groups = 3;
  sopts.ring_capacity = 4;
  sopts.start_paused = true;  // deterministic drop injection
  obs::StreamingSink sink(sopts);

  // Group 2 overflows its own ring; group 0 stays within its capacity.
  obs::StreamingSink::set_producer_group(2);
  int accepted = 0;
  for (int i = 0; i < 6; ++i)
    accepted += sink.push_stat("shard.exec_s", 0.1, /*shard=*/2) ? 1 : 0;
  EXPECT_EQ(accepted, 4);
  obs::StreamingSink::set_producer_group(0);
  EXPECT_TRUE(sink.push_stat("serve.request_latency_s", 0.2));

  sink.resume();
  sink.close();
  const auto stats = sink.stats();
  EXPECT_EQ(stats.flushed, 5u);
  EXPECT_EQ(stats.dropped, 2u);
  ASSERT_EQ(stats.dropped_by_ring.size(), 3u);
  EXPECT_EQ(stats.dropped_by_ring[0], 0u);
  EXPECT_EQ(stats.dropped_by_ring[1], 0u);
  EXPECT_EQ(stats.dropped_by_ring[2], 2u);

  // Shard-tagged stat deltas surface the tag as an attrs object.
  int tagged = 0;
  for (const auto& r : read_records(sink.segment_files())) {
    if (r.at("name").as_string() == "shard.exec_s") {
      EXPECT_EQ(r.at("attrs").at("shard").as_int(), 2);
      tagged += 1;
    }
  }
  EXPECT_EQ(tagged, 4);
}

TEST(ShardObs, ShardedServiceStreamsShardTaggedStats) {
  ObsDir dir("service");
  obs::SinkOptions sopts;
  sopts.directory = dir.path();
  sopts.producer_groups = 3;  // 2 shards + ring 0
  obs::StreamingSink sink(sopts);

  const auto a = mixed_matrix(1000, 41);
  const core::HeuristicPredictor pred;
  shard::ShardedOptions opts;
  opts.partition.shards = 2;
  opts.obs_sink = &sink;
  {
    shard::ShardedService<float> service(a, pred, opts);
    for (int i = 0; i < 3; ++i)
      (void)service.run("default",
                        random_x(static_cast<std::size_t>(a->cols()),
                                 static_cast<std::uint64_t>(i)));
    service.shutdown();
  }
  // Shard workers retagged their threads; restore the default group for
  // whatever reuses this thread.
  obs::StreamingSink::set_producer_group(0);
  sink.close();

  std::vector<int> exec_per_shard(2, 0);
  for (const auto& r : read_records(sink.segment_files())) {
    if (r.at("type").as_string() != "stat") continue;
    if (r.at("name").as_string() != "shard.exec_s") continue;
    const auto shard = r.at("attrs").at("shard").as_int();
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 2);
    exec_per_shard[static_cast<std::size_t>(shard)] += 1;
  }
  EXPECT_EQ(exec_per_shard[0], 3);
  EXPECT_EQ(exec_per_shard[1], 3);
  EXPECT_EQ(sink.stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// Learned trajectory threshold

TEST(Trajectory, LearnedGateWidensWithWindowNoiseAndFloorsAtFixed) {
  prof::Trajectory t;
  const double noisy[] = {1.0, 1.4, 0.6, 1.2, 0.8};  // mean 1.0, sigma .283
  for (double v : noisy) {
    auto j = prof::Json::object();
    j.set("noisy_ms", v);
    j.set("flat_ms", 1.0);
    t.append(j, "hist");
  }
  auto head = prof::Json::object();
  head.set("noisy_ms", 1.6);  // 1.6x the window mean
  head.set("flat_ms", 1.3);   // 1.3x the window mean
  t.append(head, "head");

  // Fixed gate: both exceed 1.25x and regress.
  const auto fixed = t.check(5, 1.25);
  ASSERT_EQ(fixed.metrics.size(), 2u);
  for (const auto& m : fixed.metrics) {
    EXPECT_TRUE(m.regressed) << m.name;
    EXPECT_DOUBLE_EQ(m.threshold, 1.25) << m.name;
  }

  // Learned gate: the noisy metric earns mean + 3*sigma headroom
  // (~1.85x here) and stops regressing; the flat metric's variance is 0,
  // so its gate collapses to the 1.25 floor and it still regresses.
  const auto learned = t.check(5, 1.25, /*learned=*/true);
  ASSERT_EQ(learned.metrics.size(), 2u);
  for (const auto& m : learned.metrics) {
    if (m.name == "noisy_ms") {
      EXPECT_FALSE(m.regressed);
      EXPECT_NEAR(m.threshold, 1.0 + 3.0 * std::sqrt(0.08), 1e-9);
    } else {
      EXPECT_TRUE(m.regressed);
      EXPECT_DOUBLE_EQ(m.threshold, 1.25);
    }
  }
  EXPECT_TRUE(learned.regressed());
}

// One PERF_TRAJECTORY file interleaving the standard and sharded serve
// snapshots: each head gates only against its own stream — the other
// bench's entries neither pollute the rolling mean nor read as schema
// drift — and the stream tag survives a save/load round trip.
TEST(Trajectory, MixedBenchStreamsGateIndependently) {
  auto standard = [](double rps) {
    auto j = prof::Json::object();
    j.set("bench", "serve_throughput");
    j.set("serve_rps", rps);
    return j;
  };
  auto sharded = [](double rps) {
    auto j = prof::Json::object();
    j.set("bench", "serve_throughput");
    j.set("mode", "sharded");
    j.set("sharded_rps", rps);
    return j;
  };

  prof::Trajectory t;
  for (int i = 0; i < 3; ++i) {
    t.append(standard(1000.0), "run" + std::to_string(i));
    t.append(sharded(4000.0), "run" + std::to_string(i) + "-sharded");
  }

  // The first sharded append followed a standard-only history and must
  // have been observe-only, not schema drift (the cold-start CI case).
  {
    prof::Trajectory cold;
    cold.append(standard(1000.0), "seed");
    cold.append(sharded(4000.0), "first-sharded");
    const auto c = cold.check(5, 1.25);
    EXPECT_TRUE(c.metrics.empty());
    EXPECT_TRUE(c.missing.empty());
  }

  // A sharded head regresses against sharded history only; the adjacent
  // standard entries (different schema) never surface as missing.
  t.append(sharded(2000.0), "slow-sharded");
  auto check = t.check(5, 1.25);
  EXPECT_TRUE(check.missing.empty());
  ASSERT_EQ(check.metrics.size(), 1u);
  EXPECT_EQ(check.metrics[0].name, "sharded_rps");
  EXPECT_NEAR(check.metrics[0].ratio, 2.0, 1e-9);
  EXPECT_TRUE(check.regressed());

  // And a healthy standard head right after it stays green.
  t.append(standard(1000.0), "healthy-standard");
  check = t.check(5, 1.25);
  EXPECT_TRUE(check.missing.empty());
  EXPECT_FALSE(check.regressed());

  // Stream tags round-trip through the JSON form.
  const auto reloaded = prof::Trajectory::from_json(t.to_json());
  ASSERT_EQ(reloaded.entries().size(), t.entries().size());
  EXPECT_EQ(reloaded.entries().back().stream, "serve_throughput");
  EXPECT_EQ(reloaded.entries()[reloaded.entries().size() - 2].stream,
            "serve_throughput/sharded");
  EXPECT_FALSE(reloaded.check(5, 1.25).regressed());
}

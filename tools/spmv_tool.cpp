// spmv_tool — command-line front end for the autospmv library.
//
// Subcommands:
//   info     --mtx F | --matrix NAME | --family NAME --rows N
//            print dimensions, Table-I features, and bin layout
//   tune     (same inputs) [--profile out.json]
//            exhaustively tune and print the per-U table
//   run      (same inputs) [--model M] [--reps K] [--profile out.json]
//            time auto vs serial/vector/csr-adaptive/merge/omp; --profile
//            writes the auto run's telemetry (plan-stage timings, per-bin
//            kernel timings, engine launch counters) as JSON
//   train    [--matrices N] [--out M] train a model on the synthetic corpus
//   gen      --family NAME --rows N --out F.mtx  write a synthetic matrix
//
// Examples:
//   spmv_tool train --matrices 120 --out model.txt
//   spmv_tool run --matrix crankseg_2 --model model.txt
//   spmv_tool run --matrix cant --profile cant.json
//   spmv_tool tune --family power_law --rows 50000
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "autospmv.hpp"

using namespace spmv;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: spmv_tool <info|tune|run|train|gen> [flags]\n"
               "  input flags: --mtx file.mtx | --matrix <table2 name> |\n"
               "               --family <corpus family> --rows N [--param P]\n"
               "  run flags:   --model model.txt --reps K --profile out.json\n"
               "  tune flags:  --profile out.json\n"
               "  train flags: --matrices N --out model.txt\n"
               "  gen flags:   --out file.mtx --seed S\n");
  return 2;
}

gen::Family family_from_name(const std::string& name) {
  for (int f = 0; f < static_cast<int>(gen::Family::kCount); ++f) {
    if (gen::family_name(static_cast<gen::Family>(f)) == name)
      return static_cast<gen::Family>(f);
  }
  throw std::invalid_argument("unknown family: " + name);
}

CsrMatrix<float> load_input(const util::Cli& cli) {
  const std::string mtx = cli.get("mtx");
  if (!mtx.empty()) {
    std::printf("input: %s\n", mtx.c_str());
    return coo_to_csr(read_matrix_market_file<float>(mtx));
  }
  const std::string name = cli.get("matrix");
  if (!name.empty()) {
    std::printf("input: Table-II analogue %s\n", name.c_str());
    return gen::make_representative<float>(name);
  }
  gen::CorpusSpec spec;
  spec.family = family_from_name(cli.get("family", "power_law"));
  spec.rows = static_cast<index_t>(cli.get_int("rows", 100000));
  spec.cols = spec.rows;
  spec.param = static_cast<index_t>(cli.get_int("param", 100));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  std::printf("input: synthetic %s, %d rows\n",
              gen::family_name(spec.family).c_str(), spec.rows);
  return gen::make_corpus_matrix<float>(spec);
}

void print_features(const CsrMatrix<float>& a) {
  const auto stats = compute_row_stats(a);
  const auto features = ml::stage1_features(stats);
  const auto& names = ml::stage1_attr_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf("  %-8s = %.6g\n", names[i].c_str(), features[i]);
}

int cmd_info(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::printf("\nTable-I features:\n");
  print_features(a);
  const auto unit = static_cast<index_t>(cli.get_int("unit", 100));
  const auto bins = binning::bin_matrix(a, unit);
  std::printf("\nbins at U=%d (%zu occupied):\n", unit,
              bins.occupied_bins().size());
  for (int b : bins.occupied_bins()) {
    std::printf("  bin %-3d: %8zu virtual rows, %9d rows\n", b,
                bins.bin(b).size(), bins.rows_in_bin(b));
  }
  return 0;
}

int cmd_tune(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  auto pools = core::default_pools();
  pools.include_single_bin = cli.get_bool("single-bin", true);
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 1, .reps = 3, .max_total_s = 0.5};

  const std::string profile_path = cli.get("profile");
  prof::RunProfile profile;
  profile.label = "spmv_tool tune";
  if (!profile_path.empty()) opts.profile = &profile;

  const auto result = core::exhaustive_tune(
      clsim::default_engine(), a, std::span<const float>(x), pools, opts);
  std::printf("\n%-12s %12s   %s\n", "candidate", "time[ms]",
              "per-bin kernels");
  for (const auto& ur : result.per_unit) {
    std::string label =
        ur.single_bin ? "single-bin" : "U=" + std::to_string(ur.unit);
    std::string kernels_str;
    for (const auto& bk : ur.bin_kernels) {
      if (!kernels_str.empty()) kernels_str += ", ";
      kernels_str += std::to_string(bk.bin_id) + ":" +
                     kernels::kernel_name(bk.kernel);
    }
    std::printf("%-12s %12.3f   {%s}\n", label.c_str(), 1e3 * ur.total_s,
                kernels_str.c_str());
  }
  std::printf("\nbest plan: %s (%.3f ms end-to-end)\n",
              result.best_plan.to_string().c_str(), 1e3 * result.best_s);
  if (!profile_path.empty()) {
    const auto stats = compute_row_stats(a);
    profile.rows = stats.rows;
    profile.cols = stats.cols;
    profile.nnz = stats.nnz;
    profile.plan = result.best_plan.to_string();
    prof::write_profile_file(profile_path, profile);
    std::printf("tuning profile written to %s\n", profile_path.c_str());
  }
  return 0;
}

int cmd_run(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const int reps = static_cast<int>(cli.get_int("reps", 10));
  const util::MeasureOptions mopts{.warmup = 2, .reps = reps,
                                   .max_total_s = 5.0};

  std::unique_ptr<core::Predictor> pred;
  const std::string model_path = cli.get("model");
  if (!model_path.empty()) {
    pred = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
  } else {
    pred = std::make_unique<core::HeuristicPredictor>();
  }

  // Telemetry: --profile enables the engine counters and attaches a
  // RunProfile to the auto runtime, so every timed repetition below also
  // accumulates per-bin kernel wall time.
  const std::string profile_path = cli.get("profile");
  prof::RunProfile profile;
  profile.label = cli.get("matrix", cli.get("mtx", cli.get("family", "")));
  prof::set_enabled(!profile_path.empty());

  const auto auto_spmv =
      core::Tuner(a)
          .predictor(*pred)
          .profile(profile_path.empty() ? nullptr : &profile)
          .build();
  std::printf("auto plan: %s\n\n", auto_spmv.plan().to_string().c_str());

  baseline::CsrAdaptive<float> adaptive(a, clsim::default_engine());
  struct Row {
    const char* name;
    double seconds;
  };
  std::vector<Row> rows;
  rows.push_back({"kernel-auto", util::measure([&] {
                    auto_spmv.run(x, std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"kernel-serial", util::measure([&] {
                    kernels::run_full(kernels::KernelId::Serial,
                                      clsim::default_engine(), a,
                                      std::span<const float>(x),
                                      std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"kernel-vector", util::measure([&] {
                    kernels::run_full(kernels::KernelId::Vector,
                                      clsim::default_engine(), a,
                                      std::span<const float>(x),
                                      std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"csr-adaptive", util::measure([&] {
                    adaptive.run(std::span<const float>(x),
                                 std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"merge", util::measure([&] {
                    baseline::spmv_merge(a, std::span<const float>(x),
                                         std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"omp-csr", util::measure([&] {
                    kernels::spmv_omp_rows(a, std::span<const float>(x),
                                           std::span<float>(y));
                  }, mopts).best_s});

  std::printf("%-14s %12s %12s\n", "strategy", "time[ms]", "GFLOP/s");
  for (const auto& row : rows) {
    std::printf("%-14s %12.3f %12.2f\n", row.name, 1e3 * row.seconds,
                2.0 * static_cast<double>(a.nnz()) / row.seconds * 1e-9);
  }
  if (!profile_path.empty()) {
    prof::write_profile_file(profile_path, profile);
    std::printf("\nprofile written to %s (%llu runs recorded)\n",
                profile_path.c_str(),
                static_cast<unsigned long long>(profile.runs));
  }
  return 0;
}

int cmd_train(const util::Cli& cli) {
  gen::CorpusOptions copts;
  copts.count = static_cast<int>(cli.get_int("matrices", 100));
  copts.min_rows = static_cast<index_t>(cli.get_int("min-rows", 1500));
  copts.max_rows = static_cast<index_t>(cli.get_int("max-rows", 12000));
  core::TrainerOptions topts;
  topts.tune.measure = {.warmup = 1, .reps = 2, .max_total_s = 0.05};

  util::set_log_level(util::LogLevel::Info);
  core::TrainReport report;
  const auto model = core::train_model(gen::sample_corpus(copts), topts,
                                       clsim::default_engine(), &report);
  std::printf("stage 1: %.1f%% train / %.1f%% test error\n",
              100.0 * report.stage1_train_error,
              100.0 * report.stage1_test_error);
  std::printf("stage 2: %.1f%% train / %.1f%% test error\n",
              100.0 * report.stage2_train_error,
              100.0 * report.stage2_test_error);
  const std::string out = cli.get("out", "autospmv_model.txt");
  core::save_model_file(out, model);
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int cmd_gen(const util::Cli& cli) {
  const auto a = load_input(cli);
  const std::string out = cli.get("out");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out file.mtx required\n");
    return 2;
  }
  write_matrix_market_file(out, csr_to_coo(a));
  std::printf("wrote %s (%d x %d, %lld nnz)\n", out.c_str(), a.rows(),
              a.cols(), static_cast<long long>(a.nnz()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    if (cmd == "info") return cmd_info(cli);
    if (cmd == "tune") return cmd_tune(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "train") return cmd_train(cli);
    if (cmd == "gen") return cmd_gen(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spmv_tool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}

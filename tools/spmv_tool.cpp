// spmv_tool — command-line front end for the autospmv library.
//
// Subcommands:
//   info     --mtx F | --matrix NAME | --family NAME --rows N
//            print dimensions, Table-I features, and bin layout
//   tune     (same inputs) [--profile out.json]
//            exhaustively tune and print the per-U table
//   run      (same inputs) [--model M] [--reps K] [--profile out.json]
//            time auto vs serial/vector/csr-adaptive/merge/omp; --profile
//            writes the auto run's telemetry (plan-stage timings, per-bin
//            kernel timings, engine launch counters) as JSON
//   train    [--matrices N] [--out M] train a model on the synthetic corpus
//   gen      --family NAME --rows N --out F.mtx  write a synthetic matrix
//   serve-bench  (same inputs) [--requests R] [--clients C] [--workers W]
//            [--max-batch B] [--profile out.json] [--trace out.trace.json]
//            [--trace-sample N] [--metrics-out metrics.txt]
//            [--plan-store store.json] [--obs-dir dir]
//            drive an SpmvService with concurrent clients and compare its
//            throughput against naive per-request plan-and-run; --trace
//            writes a Chrome trace-event file (chrome://tracing/Perfetto)
//            of the traced requests (--trace-sample N traces one request
//            in N), --metrics-out a Prometheus text exposition of the
//            serve stats (latency histograms carry exemplars),
//            --plan-store warm-starts the plan cache from a persistent
//            store and flushes tuned plans back on shutdown, --obs-dir
//            streams completed spans and stat deltas into rotating JSONL
//            segment files (spmv::obs) as the bench runs.
//            With --shards K [--tenants T] the bench drives the row-sharded
//            ShardedService instead: K nnz-balanced shards each with its
//            own plan/arms/store entry, T tenants admitted through the
//            fair queue (--queue-policy fair|fifo, --tenant-weights 4,1,
//            --queue-high-water N); prints per-shard GFLOP/s and a
//            per-tenant table including queue-full rejections
//   adapt-bench  (same inputs) [--requests R] [--trial-fraction F]
//            [--workers W] [--store store.json] [--profile out.json]
//            [--explore-u] [--unit-fraction F]
//            start from a deliberately mispredicted plan and let the
//            online BanditTuner refine it in-flight: prints windowed
//            request throughput, promotion/trial counters, the refined
//            plan's GFLOP/s vs the exhaustive oracle, and a warm-restart
//            demo (warm hits > 0, planning passes == 0). --explore-u
//            additionally lets the tuner shadow-measure neighboring
//            binning granularities and promote whole re-binned plans
//            (U trials/promotions are printed separately)
//   plan-store ls|gc  --store store.json [--model-version V]
//            [--ttl-hours H]
//            ls: print load/skip accounting and every plan visible under
//            this device/model scope; gc: drop preserved foreign entries
//            (and, with --ttl-hours, own entries not used within H hours)
//            and rewrite the store file
//   compare-profiles  baseline.json current.json [--threshold 1.15]
//            diff two RunProfile artifacts (run time, per-bin kernel time,
//            serve percentiles); exits 1 when current regresses past the
//            threshold, 2 when the baseline carries metric sections the
//            current profile lost (schema mismatch — a renamed metric must
//            not read as "no regression") — the CI perf gate
//   perf-trajectory  append|check|render --file trajectory.json
//            append: --bench BENCH_x.json --label L  fold one benchmark
//            snapshot's numeric leaves into the committed trajectory file
//            check:  [--window 5] [--threshold 1.25] [--learned]  gate the
//            newest entry against the rolling window mean; exits 1 on
//            regression, 2 on schema drift (head entry lost metrics).
//            --learned gates each metric at max(threshold, (mean+3sigma)/
//            mean) of its own window — noisy metrics earn headroom, flat
//            ones tighten to the floor
//            render: [--out dashboard.md] [--window 20]  markdown +
//            sparkline dashboard of every tracked metric
//
// Examples:
//   spmv_tool train --matrices 120 --out model.txt
//   spmv_tool run --matrix crankseg_2 --model model.txt
//   spmv_tool run --matrix cant --profile cant.json
//   spmv_tool tune --family power_law --rows 50000
//   spmv_tool serve-bench --matrix cant --clients 8 --profile serve.json
//   spmv_tool serve-bench --matrix cant --trace cant.trace.json
//   spmv_tool serve-bench --matrix cant --plan-store plans.json
//   spmv_tool adapt-bench --matrix cant --store plans.json
//   spmv_tool plan-store ls --store plans.json
//   spmv_tool compare-profiles main.json pr.json --threshold 1.15
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>

#include "autospmv.hpp"

using namespace spmv;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: spmv_tool "
               "<info|tune|run|train|gen|serve-bench|adapt-bench|"
               "plan-store|compare-profiles|perf-trajectory> [flags]\n"
               "  input flags: --mtx file.mtx | --matrix <table2 name> |\n"
               "               --family <corpus family> --rows N [--param P]\n"
               "  backend:     --backend clsim|native (run, tune,\n"
               "               serve-bench, adapt-bench; default clsim)\n"
               "  format:      --format csr|auto (run, serve-bench,\n"
               "               adapt-bench; per-bin physical layouts via\n"
               "               the fmt estimator; default csr)\n"
               "  run flags:   --model model.txt --reps K --profile out.json\n"
               "               --trace out.trace.json\n"
               "  tune flags:  --profile out.json\n"
               "  train flags: --matrices N --out model.txt\n"
               "  gen flags:   --out file.mtx --seed S\n"
               "  serve-bench flags: --requests R --clients C --workers W\n"
               "               --max-batch B --profile out.json\n"
               "               --trace out.trace.json --trace-sample N\n"
               "               --metrics-out m.txt --plan-store store.json\n"
               "               --obs-dir dir\n"
               "               sharded: --shards K --tenants T\n"
               "               --queue-policy fair|fifo --tenant-weights "
               "4,1\n"
               "               --queue-high-water N\n"
               "  adapt-bench flags: --requests R --trial-fraction F\n"
               "               --workers W --store store.json "
               "--profile out.json\n"
               "               --explore-u --unit-fraction F\n"
               "               --explore-backend --backend-fraction F\n"
               "               --explore-format --format-fraction F\n"
               "  plan-store:  ls|gc --store store.json [--model-version V]\n"
               "               [--ttl-hours H]\n"
               "  compare-profiles: baseline.json current.json "
               "[--threshold 1.15]\n"
               "  perf-trajectory: append|check|render --file t.json\n"
               "               append: --bench BENCH.json --label L\n"
               "               [--max-entries N]\n"
               "               check: [--window 5] [--threshold 1.25]\n"
               "               [--learned]\n"
               "               render: [--out dashboard.md] [--window 20]\n");
  return 2;
}

/// The uniform `--backend clsim|native` flag (run, tune, serve-bench,
/// adapt-bench and the fig benches all spell it the same way).
exec::BackendKind backend_from_cli(const util::Cli& cli) {
  return exec::backend_from_name(cli.get("backend", "clsim"));
}

/// The uniform `--format csr|auto` flag (run, serve-bench, adapt-bench).
fmt::FormatMode format_from_cli(const util::Cli& cli) {
  return fmt::format_mode_from_name(cli.get("format", "csr"));
}

/// One-line per-bin format provenance: which bins left CSR and for what.
void print_format_provenance(const core::Plan& plan) {
  if (!plan.uses_formats()) return;
  std::string desc;
  for (const auto& bp : plan.bin_kernels) {
    if (bp.format == fmt::FormatKind::Csr) continue;
    if (!desc.empty()) desc += ", ";
    desc += "bin " + std::to_string(bp.bin_id) + " -> " +
            fmt::format_cname(bp.format);
  }
  std::printf("formats: %s (other bins stay csr)\n", desc.c_str());
}

gen::Family family_from_name(const std::string& name) {
  for (int f = 0; f < static_cast<int>(gen::Family::kCount); ++f) {
    if (gen::family_name(static_cast<gen::Family>(f)) == name)
      return static_cast<gen::Family>(f);
  }
  throw std::invalid_argument("unknown family: " + name);
}

CsrMatrix<float> load_input(const util::Cli& cli) {
  const std::string mtx = cli.get("mtx");
  if (!mtx.empty()) {
    std::printf("input: %s\n", mtx.c_str());
    return coo_to_csr(read_matrix_market_file<float>(mtx));
  }
  const std::string name = cli.get("matrix");
  if (!name.empty()) {
    std::printf("input: Table-II analogue %s\n", name.c_str());
    return gen::make_representative<float>(name);
  }
  gen::CorpusSpec spec;
  spec.family = family_from_name(cli.get("family", "power_law"));
  spec.rows = static_cast<index_t>(cli.get_int("rows", 100000));
  spec.cols = spec.rows;
  spec.param = static_cast<index_t>(cli.get_int("param", 100));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  std::printf("input: synthetic %s, %d rows\n",
              gen::family_name(spec.family).c_str(), spec.rows);
  return gen::make_corpus_matrix<float>(spec);
}

void print_features(const CsrMatrix<float>& a) {
  const auto stats = compute_row_stats(a);
  const auto features = ml::stage1_features(stats);
  const auto& names = ml::stage1_attr_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf("  %-8s = %.6g\n", names[i].c_str(), features[i]);
}

int cmd_info(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::printf("\nTable-I features:\n");
  print_features(a);
  const auto unit = static_cast<index_t>(cli.get_int("unit", 100));
  const auto bins = binning::bin_matrix(a, unit);
  std::printf("\nbins at U=%d (%zu occupied):\n", unit,
              bins.occupied_bins().size());
  for (int b : bins.occupied_bins()) {
    std::printf("  bin %-3d: %8zu virtual rows, %9d rows\n", b,
                bins.bin(b).size(), bins.rows_in_bin(b));
  }
  return 0;
}

int cmd_tune(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  auto pools = core::default_pools();
  pools.include_single_bin = cli.get_bool("single-bin", true);
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 1, .reps = 3, .max_total_s = 0.5};

  const std::string profile_path = cli.get("profile");
  prof::RunProfile profile;
  profile.label = "spmv_tool tune";
  if (!profile_path.empty()) opts.profile = &profile;

  const auto backend = exec::shared_backend(backend_from_cli(cli));
  const auto result = core::exhaustive_tune(
      *backend, a, std::span<const float>(x), pools, opts);
  std::printf("\n%-12s %12s   %s\n", "candidate", "time[ms]",
              "per-bin kernels");
  for (const auto& ur : result.per_unit) {
    std::string label =
        ur.single_bin ? "single-bin" : "U=" + std::to_string(ur.unit);
    std::string kernels_str;
    for (const auto& bk : ur.bin_kernels) {
      if (!kernels_str.empty()) kernels_str += ", ";
      kernels_str += std::to_string(bk.bin_id) + ":" +
                     kernels::kernel_name(bk.kernel);
    }
    std::printf("%-12s %12.3f   {%s}\n", label.c_str(), 1e3 * ur.total_s,
                kernels_str.c_str());
  }
  std::printf("\nbest plan: %s (%.3f ms end-to-end)\n",
              result.best_plan.to_string().c_str(), 1e3 * result.best_s);
  if (!profile_path.empty()) {
    const auto stats = compute_row_stats(a);
    profile.rows = stats.rows;
    profile.cols = stats.cols;
    profile.nnz = stats.nnz;
    profile.plan = result.best_plan.to_string();
    prof::write_profile_file(profile_path, profile);
    std::printf("tuning profile written to %s\n", profile_path.c_str());
  }
  return 0;
}

int cmd_run(const util::Cli& cli) {
  const auto a = load_input(cli);
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const int reps = static_cast<int>(cli.get_int("reps", 10));
  const util::MeasureOptions mopts{.warmup = 2, .reps = reps,
                                   .max_total_s = 5.0};

  std::unique_ptr<core::Predictor> pred;
  const std::string model_path = cli.get("model");
  if (!model_path.empty()) {
    pred = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
  } else {
    pred = std::make_unique<core::HeuristicPredictor>();
  }

  // Telemetry: --profile enables the engine counters and attaches a
  // RunProfile to the auto runtime, so every timed repetition below also
  // accumulates per-bin kernel wall time.
  const std::string profile_path = cli.get("profile");
  prof::RunProfile profile;
  profile.label = cli.get("matrix", cli.get("mtx", cli.get("family", "")));
  prof::set_enabled(!profile_path.empty());
  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) trace::start();

  const exec::BackendKind backend_kind = backend_from_cli(cli);
  const auto backend = exec::shared_backend(backend_kind);
  const auto auto_spmv =
      core::Tuner(a)
          .predictor(*pred)
          .backend(backend_kind)
          .formats(format_from_cli(cli))
          .profile(profile_path.empty() ? nullptr : &profile)
          .build();
  std::printf("auto plan: %s (backend %s)\n",
              auto_spmv.plan().to_string().c_str(),
              exec::backend_cname(backend_kind));
  print_format_provenance(auto_spmv.plan());
  std::printf("\n");

  baseline::CsrAdaptive<float> adaptive(a, clsim::default_engine());
  struct Row {
    const char* name;
    double seconds;
  };
  std::vector<Row> rows;
  rows.push_back({"kernel-auto", util::measure([&] {
                    auto_spmv.run(x, std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"kernel-serial", util::measure([&] {
                    backend->run_full(kernels::KernelId::Serial, a,
                                      std::span<const float>(x),
                                      std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"kernel-vector", util::measure([&] {
                    backend->run_full(kernels::KernelId::Vector, a,
                                      std::span<const float>(x),
                                      std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"csr-adaptive", util::measure([&] {
                    adaptive.run(std::span<const float>(x),
                                 std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"merge", util::measure([&] {
                    baseline::spmv_merge(a, std::span<const float>(x),
                                         std::span<float>(y));
                  }, mopts).best_s});
  rows.push_back({"omp-csr", util::measure([&] {
                    kernels::spmv_omp_rows(a, std::span<const float>(x),
                                           std::span<float>(y));
                  }, mopts).best_s});

  std::printf("%-14s %12s %12s\n", "strategy", "time[ms]", "GFLOP/s");
  for (const auto& row : rows) {
    std::printf("%-14s %12.3f %12.2f\n", row.name, 1e3 * row.seconds,
                2.0 * static_cast<double>(a.nnz()) / row.seconds * 1e-9);
  }
  if (!profile_path.empty()) {
    prof::write_profile_file(profile_path, profile);
    std::printf("\nprofile written to %s (%llu runs recorded)\n",
                profile_path.c_str(),
                static_cast<unsigned long long>(profile.runs));
  }
  if (!trace_path.empty()) {
    trace::stop();
    const auto snap = trace::snapshot();
    trace::write_chrome_trace_file(trace_path);
    std::printf("trace written to %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), snap.events.size(),
                static_cast<unsigned long long>(snap.dropped));
  }
  return 0;
}

int cmd_train(const util::Cli& cli) {
  gen::CorpusOptions copts;
  copts.count = static_cast<int>(cli.get_int("matrices", 100));
  copts.min_rows = static_cast<index_t>(cli.get_int("min-rows", 1500));
  copts.max_rows = static_cast<index_t>(cli.get_int("max-rows", 12000));
  core::TrainerOptions topts;
  topts.tune.measure = {.warmup = 1, .reps = 2, .max_total_s = 0.05};

  util::set_log_level(util::LogLevel::Info);
  core::TrainReport report;
  const auto model = core::train_model(gen::sample_corpus(copts), topts,
                                       clsim::default_engine(), &report);
  std::printf("stage 1: %.1f%% train / %.1f%% test error\n",
              100.0 * report.stage1_train_error,
              100.0 * report.stage1_test_error);
  std::printf("stage 2: %.1f%% train / %.1f%% test error\n",
              100.0 * report.stage2_train_error,
              100.0 * report.stage2_test_error);
  const std::string out = cli.get("out", "autospmv_model.txt");
  core::save_model_file(out, model);
  std::printf("model saved to %s\n", out.c_str());
  return 0;
}

int cmd_gen(const util::Cli& cli) {
  const auto a = load_input(cli);
  const std::string out = cli.get("out");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out file.mtx required\n");
    return 2;
  }
  write_matrix_market_file(out, csr_to_coo(a));
  std::printf("wrote %s (%d x %d, %lld nnz)\n", out.c_str(), a.rows(),
              a.cols(), static_cast<long long>(a.nnz()));
  return 0;
}

// serve-bench --shards K [--tenants T]: the row-sharded serving mode. One
// matrix split into K nnz-balanced shards (each with its own plan, arms,
// and store entry), T admission tenants in front of the shard pool under
// the fair (or fifo) queue. Prints per-shard plans/GFLOP/s and a
// per-tenant table including queue-full rejections.
int cmd_serve_bench_sharded(const util::Cli& cli, int shards) {
  auto a = std::make_shared<const CsrMatrix<float>>(load_input(cli));
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int tenants = std::max(1, static_cast<int>(cli.get_int("tenants", 1)));

  std::unique_ptr<core::Predictor> pred;
  const std::string model_path = cli.get("model");
  if (!model_path.empty()) {
    pred = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
  } else {
    pred = std::make_unique<core::HeuristicPredictor>();
  }

  prof::RunProfile profile;
  profile.label = cli.get("matrix", cli.get("mtx", cli.get("family", "")));
  shard::ShardedOptions opts;
  opts.partition.shards = shards;
  // --tenant-weights 4,1,1 — weights in tenant order; missing entries
  // default to 1 (equal share).
  {
    std::istringstream weights(cli.get("tenant-weights"));
    for (int t = 0; t < tenants; ++t) {
      double w = 1.0;
      std::string tok;
      if (std::getline(weights, tok, ',') && !tok.empty()) w = std::stod(tok);
      opts.tenants.push_back({"tenant" + std::to_string(t), w});
    }
  }
  opts.queue_policy =
      shard::queue_policy_from_name(cli.get("queue-policy", "fair"));
  opts.queue_high_water = static_cast<std::size_t>(
      cli.get_int("queue-high-water", requests + 16));
  opts.workers_per_shard = static_cast<int>(cli.get_int("workers", 1));
  opts.backend = backend_from_cli(cli);
  opts.format = format_from_cli(cli);
  opts.profile = &profile;
  std::unique_ptr<adapt::PlanStore> store;
  const std::string store_path = cli.get("plan-store");
  if (!store_path.empty()) {
    store = std::make_unique<adapt::PlanStore>(store_path);
    opts.plan_store = store.get();
  }
  const std::string obs_dir = cli.get("obs-dir");
  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty() || !obs_dir.empty()) {
    trace::TraceConfig tconfig;
    tconfig.sample_every_n =
        static_cast<std::uint64_t>(cli.get_int("trace-sample", 1));
    trace::start(tconfig);
  }
  std::unique_ptr<obs::StreamingSink> sink;
  if (!obs_dir.empty()) {
    obs::SinkOptions sopts;
    sopts.directory = obs_dir;
    // One ring per shard partition plus ring 0 for non-shard threads.
    sopts.producer_groups = static_cast<std::size_t>(shards) + 1;
    sink = std::make_unique<obs::StreamingSink>(sopts);
    sink->attach();
    opts.obs_sink = sink.get();
  }

  std::vector<std::vector<float>> xs;
  xs.reserve(static_cast<std::size_t>(requests));
  util::Xoshiro256 rng(7);
  for (int i = 0; i < requests; ++i) {
    std::vector<float> x(static_cast<std::size_t>(a->cols()));
    for (auto& v : x) v = static_cast<float>(rng.uniform(0.5, 1.5));
    xs.push_back(std::move(x));
  }

  double serve_s = 0.0;
  prof::ServeStats live;
  {
    shard::ShardedService<float> service(a, *pred, opts);
    std::printf("\npartition: %d shard(s) over %lld rows / %lld nnz\n",
                service.shard_count(), static_cast<long long>(a->rows()),
                static_cast<long long>(a->nnz()));
    for (const auto& info : service.shard_infos()) {
      std::printf("  shard %d: rows [%d, %d)  %10lld nnz%s  %s\n", info.index,
                  info.range.row_begin, info.range.row_end,
                  static_cast<long long>(info.range.nnz),
                  info.warm_start ? "  (warm)" : "", info.plan.to_string().c_str());
    }

    std::atomic<int> next{0};
    std::vector<std::future<std::vector<float>>> futs(
        static_cast<std::size_t>(requests));
    std::vector<char> ok(static_cast<std::size_t>(requests), 0);
    util::Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests) return;
          const std::string tenant = "tenant" + std::to_string(i % tenants);
          try {
            futs[static_cast<std::size_t>(i)] =
                service.submit(tenant, xs[static_cast<std::size_t>(i)]);
            ok[static_cast<std::size_t>(i)] = 1;
          } catch (const serve::QueueFullError&) {
            // Bounced by admission (global or tenant quota) — counted in
            // the tenant's stats block; the bench just sheds it.
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t i = 0; i < futs.size(); ++i)
      if (ok[i] != 0) (void)futs[i].get();
    serve_s = wall.elapsed_s();
    live = service.stats();
    service.shutdown();
  }
  if (!trace_path.empty() || !obs_dir.empty()) {
    trace::stop();
    const auto snap = trace::snapshot();
    profile.trace_stats.events = snap.events.size();
    profile.trace_stats.dropped_spans = snap.dropped;
    profile.trace_stats.threads = snap.threads;
  }
  if (sink != nullptr) {
    sink->detach();
    sink->close();
    const auto ss = sink->stats();
    std::string per_ring;
    for (std::size_t r = 0; r < ss.dropped_by_ring.size(); ++r)
      per_ring += (r == 0 ? "" : "/") + std::to_string(ss.dropped_by_ring[r]);
    std::printf("obs sink %s: %llu record(s) flushed into %zu segment(s), "
                "%llu dropped (per ring: %s)\n",
                obs_dir.c_str(), static_cast<unsigned long long>(ss.flushed),
                sink->segment_files().size(),
                static_cast<unsigned long long>(ss.dropped), per_ring.c_str());
  }

  std::printf("\n%d request(s) in %.1f ms — %.1f requests/s "
              "(%d tenant(s), %s queue)\n",
              static_cast<int>(live.requests), 1e3 * serve_s,
              static_cast<double>(live.requests) / serve_s, tenants,
              shard::queue_policy_name(opts.queue_policy));
  std::printf("\n%-10s %14s %12s %10s %8s\n", "shard", "nnz", "execs",
              "GFLOP/s", "promos");
  for (const auto& sh : live.shards) {
    const double gf =
        sh.exec_total_s > 0.0
            ? 2.0 * static_cast<double>(sh.nnz) *
                  static_cast<double>(sh.executions) / sh.exec_total_s * 1e-9
            : 0.0;
    std::printf("%-10d %14lld %12llu %10.2f %8llu\n", sh.shard,
                static_cast<long long>(sh.nnz),
                static_cast<unsigned long long>(sh.executions), gf,
                static_cast<unsigned long long>(sh.promotions));
  }
  std::printf("\n%-12s %8s %10s %10s %12s %12s %12s\n", "tenant", "weight",
              "accepted", "rejected", "p50[ms]", "p95[ms]", "p99[ms]");
  for (const auto& t : live.tenants) {
    std::printf("%-12s %8.2f %10llu %10llu %12.3f %12.3f %12.3f\n",
                t.name.c_str(), t.weight,
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.rejected),
                1e3 * t.latency.percentile(50), 1e3 * t.latency.percentile(95),
                1e3 * t.latency.percentile(99));
  }
  if (store != nullptr) {
    std::printf("\nplan store %s: %llu warm start(s), %llu planning "
                "pass(es)\n",
                store_path.c_str(),
                static_cast<unsigned long long>(live.cache_warm_hits),
                static_cast<unsigned long long>(live.planning_passes));
  }
  const std::string profile_path = cli.get("profile");
  if (!profile_path.empty()) {
    prof::write_profile_file(profile_path, profile);
    std::printf("serve profile written to %s\n", profile_path.c_str());
  }
  if (!trace_path.empty()) {
    const auto snap = trace::snapshot();
    trace::write_chrome_trace_file(trace_path);
    std::printf("trace written to %s (%zu events across %d threads, %llu "
                "dropped)\n",
                trace_path.c_str(), snap.events.size(), snap.threads,
                static_cast<unsigned long long>(snap.dropped));
  }
  const std::string metrics_path = cli.get("metrics-out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot open " + metrics_path);
    out << prof::prometheus_text(profile);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_serve_bench(const util::Cli& cli) {
  if (const int shards = static_cast<int>(cli.get_int("shards", 1));
      shards > 1 || cli.has("tenants"))
    return cmd_serve_bench_sharded(cli, std::max(1, shards));
  auto a = std::make_shared<const CsrMatrix<float>>(load_input(cli));
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const int max_batch = static_cast<int>(cli.get_int("max-batch", 8));

  std::unique_ptr<core::Predictor> pred;
  const std::string model_path = cli.get("model");
  if (!model_path.empty()) {
    pred = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
  } else {
    pred = std::make_unique<core::HeuristicPredictor>();
  }

  std::vector<std::vector<float>> xs;
  xs.reserve(static_cast<std::size_t>(requests));
  util::Xoshiro256 rng(7);
  for (int i = 0; i < requests; ++i) {
    std::vector<float> x(static_cast<std::size_t>(a->cols()));
    for (auto& v : x) v = static_cast<float>(rng.uniform(0.5, 1.5));
    xs.push_back(std::move(x));
  }

  // Claim request indices from `clients` threads; returns wall seconds.
  const auto drive = [&](const std::function<void(int)>& fn) {
    std::atomic<int> next{0};
    util::Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests) return;
          fn(i);
        }
      });
    }
    for (auto& t : threads) t.join();
    return wall.elapsed_s();
  };

  const double naive_s = drive([&](int i) {
    const auto spmv = core::Tuner(*a)
                          .predictor(*pred)
                          .backend(backend_from_cli(cli))
                          .formats(format_from_cli(cli))
                          .build();
    std::vector<float> y(static_cast<std::size_t>(a->rows()));
    spmv.run(xs[static_cast<std::size_t>(i)], std::span<float>(y));
  });

  prof::RunProfile profile;
  profile.label = cli.get("matrix", cli.get("mtx", cli.get("family", "")));
  serve::ServiceOptions opts;
  opts.workers = workers;
  opts.max_batch = max_batch;
  opts.queue_high_water = static_cast<std::size_t>(requests) + 16;
  opts.backend = backend_from_cli(cli);
  opts.format = format_from_cli(cli);
  opts.profile = &profile;
  // --plan-store warm-starts the cache from disk (and flushes plans back
  // on shutdown), so a repeated bench run skips the planning pass.
  std::unique_ptr<adapt::PlanStore> store;
  const std::string store_path = cli.get("plan-store");
  if (!store_path.empty()) {
    store = std::make_unique<adapt::PlanStore>(store_path);
    opts.plan_store = store.get();
  }
  // --trace records the served half of the bench (submit -> queue ->
  // batch-claim -> execute -> complete, request-id-correlated across the
  // worker threads) as a Chrome trace-event file. --trace-sample N keeps
  // one request in N so long benches stay within the ring buffers.
  // --obs-dir streams spans/stats continuously. The sink needs tracing on
  // to see spans, so it implies --trace-style recording even without a
  // Chrome-trace output path.
  const std::string obs_dir = cli.get("obs-dir");
  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty() || !obs_dir.empty()) {
    trace::TraceConfig tconfig;
    tconfig.sample_every_n =
        static_cast<std::uint64_t>(cli.get_int("trace-sample", 1));
    trace::start(tconfig);
  }
  std::unique_ptr<obs::StreamingSink> sink;
  if (!obs_dir.empty()) {
    obs::SinkOptions sopts;
    sopts.directory = obs_dir;
    sink = std::make_unique<obs::StreamingSink>(sopts);
    sink->attach();
    opts.obs_sink = sink.get();
  }
  double serve_s = 0.0;
  {
    serve::SpmvService<float> service(*pred, opts);
    (void)service.run(a, xs.front());  // warm the plan cache off-clock
    {
      const auto entry = service.cache().get(a);
      std::printf("served plan: %s\n", entry->runtime.plan().to_string().c_str());
      print_format_provenance(entry->runtime.plan());
    }
    // Pipelined clients: submit everything, then collect — queue depth is
    // what lets workers coalesce multi-vector batches.
    std::vector<std::future<std::vector<float>>> futs(
        static_cast<std::size_t>(requests));
    util::Timer wall;
    (void)drive([&](int i) {
      futs[static_cast<std::size_t>(i)] =
          service.submit(a, xs[static_cast<std::size_t>(i)]);
    });
    for (auto& f : futs) (void)f.get();
    serve_s = wall.elapsed_s();
    service.shutdown();
  }
  if (!trace_path.empty() || !obs_dir.empty()) {
    trace::stop();
    // Account the trace stream into the profile: span counts AND the spans
    // lost to ring wrap-around, so the artifact records its own holes.
    const auto snap = trace::snapshot();
    profile.trace_stats.events = snap.events.size();
    profile.trace_stats.dropped_spans = snap.dropped;
    profile.trace_stats.threads = snap.threads;
  }
  if (sink != nullptr) {
    sink->detach();  // safe: the service's workers joined, tracing stopped
    sink->close();
    const auto ss = sink->stats();
    std::printf("obs sink %s: %llu record(s) flushed into %zu segment(s), "
                "%llu dropped\n",
                obs_dir.c_str(), static_cast<unsigned long long>(ss.flushed),
                sink->segment_files().size(),
                static_cast<unsigned long long>(ss.dropped));
  }

  const auto& s = profile.serve;
  std::printf("\n%-24s %12s %14s\n", "strategy", "wall[ms]", "requests/s");
  std::printf("%-24s %12.1f %14.1f\n", "naive plan-and-run", 1e3 * naive_s,
              requests / naive_s);
  std::printf("%-24s %12.1f %14.1f\n", "SpmvService", 1e3 * serve_s,
              requests / serve_s);
  std::printf("speedup %.2fx; %llu batches, cache hit rate %.0f%%, mean "
              "queue wait %.3f ms\n",
              naive_s / serve_s, static_cast<unsigned long long>(s.batches),
              100.0 * s.cache_hit_rate(),
              s.requests == 0 ? 0.0
                              : 1e3 * s.queue_wait_total_s /
                                    static_cast<double>(s.requests));
  if (!s.request_latency.empty()) {
    std::printf("request latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                1e3 * s.request_latency.percentile(50),
                1e3 * s.request_latency.percentile(95),
                1e3 * s.request_latency.percentile(99));
  }
  if (store != nullptr) {
    std::printf("plan store %s: %llu warm hit(s), %llu planning pass(es)\n",
                store_path.c_str(),
                static_cast<unsigned long long>(s.cache_warm_hits),
                static_cast<unsigned long long>(s.planning_passes));
  }
  const std::string profile_path = cli.get("profile");
  if (!profile_path.empty()) {
    prof::write_profile_file(profile_path, profile);
    std::printf("serve profile written to %s\n", profile_path.c_str());
  }
  if (!trace_path.empty()) {
    const auto snap = trace::snapshot();
    trace::write_chrome_trace_file(trace_path);
    std::printf("trace written to %s (%zu events across %d threads, %llu "
                "dropped)\n",
                trace_path.c_str(), snap.events.size(), snap.threads,
                static_cast<unsigned long long>(snap.dropped));
  }
  const std::string metrics_path = cli.get("metrics-out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot open " + metrics_path);
    out << prof::prometheus_text(profile);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

// Deliberately bad predictor: a coarse fixed unit with Serial in every
// bin. adapt-bench's starting point — every hot bin has headroom, so the
// online BanditTuner has something real to recover.
class MispredictPredictor final : public core::Predictor {
 public:
  explicit MispredictPredictor(index_t unit) : unit_(unit) {}
  [[nodiscard]] UnitChoice predict_unit(const RowStats&) const override {
    return {unit_, false};
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats&, index_t,
                                                 int) const override {
    return kernels::KernelId::Serial;
  }

 private:
  index_t unit_;
};

// Time one plan end-to-end (no service in the loop) and return GFLOP/s.
// The plan's own backend resolves automatically through the Tuner.
double plan_gflops(const CsrMatrix<float>& a, const core::Plan& plan,
                   std::span<const float> x) {
  const auto rt = core::Tuner(a).plan(plan).build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const auto m = util::measure(
      [&] { rt.run(x, std::span<float>(y)); },
      {.warmup = 1, .reps = 5, .max_total_s = 1.0});
  return 2.0 * static_cast<double>(a.nnz()) / m.best_s * 1e-9;
}

// The online-refinement story in one command: tune exhaustively (the
// oracle), start a service from a mispredicted plan, let the BanditTuner
// shadow-measure and promote, then compare the refined plan against both
// endpoints and demonstrate the warm restart.
int cmd_adapt_bench(const util::Cli& cli) {
  auto a = std::make_shared<const CsrMatrix<float>>(load_input(cli));
  const int requests = static_cast<int>(cli.get_int("requests", 400));
  const double trial_fraction = cli.get_double("trial-fraction", 0.5);
  const int workers = static_cast<int>(cli.get_int("workers", 1));
  const auto unit = static_cast<index_t>(cli.get_int("unit", 100));
  std::string store_path = cli.get("store");
  const bool temp_store = store_path.empty();
  if (temp_store) store_path = "adapt_bench_store.tmp.json";

  std::vector<float> x(static_cast<std::size_t>(a->cols()));
  util::Xoshiro256 rng(7);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.5, 1.5));

  // Oracle: what exhaustive tuning would pick, and what it's worth.
  core::ExhaustiveOptions topts;
  topts.measure = {.warmup = 1, .reps = 3, .max_total_s = 0.5};
  const auto oracle_backend = exec::shared_backend(backend_from_cli(cli));
  const auto tuned =
      core::exhaustive_tune(*oracle_backend, *a, std::span<const float>(x),
                            core::default_pools(), topts);
  const double oracle_gf = plan_gflops(*a, tuned.best_plan, x);

  // Starting point: the mispredicted plan the service will begin from.
  MispredictPredictor mis(unit);
  const auto mis_plan =
      core::Tuner(*a).predictor(mis).build().plan();
  const double mis_gf = plan_gflops(*a, mis_plan, x);
  std::printf("\noracle plan:       %s  (%.2f GFLOP/s)\n",
              tuned.best_plan.to_string().c_str(), oracle_gf);
  std::printf("mispredicted plan: %s  (%.2f GFLOP/s)\n",
              mis_plan.to_string().c_str(), mis_gf);

  // Serve from the mispredicted plan with online adaptation enabled.
  prof::RunProfile profile;
  profile.label = "adapt-bench";
  serve::ServiceOptions opts;
  opts.workers = workers;
  opts.backend = backend_from_cli(cli);
  opts.format = format_from_cli(cli);
  opts.profile = &profile;
  adapt::AdaptOptions aopts;
  aopts.trial_fraction = trial_fraction;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  aopts.hot_bins = 4;
  if (cli.get_bool("explore-u", false)) {
    aopts.explore_units = true;
    aopts.unit_trial_fraction = cli.get_double("unit-fraction", 0.5);
    aopts.unit_min_samples = 2;
    aopts.unit_hysteresis = 1.05;
    aopts.unit_cooldown = 4;
  }
  if (cli.get_bool("explore-backend", false)) {
    aopts.explore_backends = true;
    aopts.backend_trial_fraction = cli.get_double("backend-fraction", 0.5);
    aopts.backend_min_samples = 2;
    aopts.backend_hysteresis = 1.05;
    aopts.backend_cooldown = 4;
  }
  if (cli.get_bool("explore-format", false)) {
    aopts.explore_formats = true;
    aopts.format_trial_fraction = cli.get_double("format-fraction", 0.5);
    aopts.format_min_samples = 2;
    aopts.format_hysteresis = 1.05;
    aopts.format_cooldown = 4;
  }
  opts.adapt = aopts;
  adapt::PlanStore store(store_path);
  opts.plan_store = &store;

  std::printf("\n%-8s %12s %14s %12s\n", "window", "wall[ms]", "requests/s",
              "promotions");
  {
    serve::SpmvService<float> service(mis, opts);
    const int window = std::max(1, requests / 10);
    util::Timer win;
    for (int i = 0; i < requests; ++i) {
      (void)service.run(a, x);
      if ((i + 1) % window == 0 || i + 1 == requests) {
        const double w = win.elapsed_s();
        std::printf("%-8d %12.1f %14.1f %12llu\n", i + 1, 1e3 * w,
                    static_cast<double>(window) / w,
                    static_cast<unsigned long long>(
                        service.stats().cache_promotions));
        win.reset();
      }
    }
    service.shutdown();
  }
  const auto& ad = profile.adapt;
  std::printf("\nadapt: %llu trials, %llu promotions, %.3f ms regret\n",
              static_cast<unsigned long long>(ad.trials),
              static_cast<unsigned long long>(ad.promotions),
              1e3 * ad.regret_s);
  if (ad.u_trials > 0 || ad.u_promotions > 0)
    std::printf("adapt U: %llu trials, %llu promotions (%llu re-binned "
                "cache swaps)\n",
                static_cast<unsigned long long>(ad.u_trials),
                static_cast<unsigned long long>(ad.u_promotions),
                static_cast<unsigned long long>(
                    profile.serve.cache_rebin_promotions));
  if (ad.b_trials > 0 || ad.b_promotions > 0)
    std::printf("adapt backend: %llu trials, %llu promotions\n",
                static_cast<unsigned long long>(ad.b_trials),
                static_cast<unsigned long long>(ad.b_promotions));
  if (ad.f_trials > 0 || ad.f_promotions > 0)
    std::printf("adapt format: %llu trials, %llu promotions\n",
                static_cast<unsigned long long>(ad.f_trials),
                static_cast<unsigned long long>(ad.f_promotions));

  // What shipped to the store is the refined plan; time it oracle-style.
  adapt::PlanStore reread(store_path);
  (void)reread.load();
  const auto stored = reread.lookup(serve::fingerprint_of(*a));
  if (stored.has_value()) {
    const double refined_gf = plan_gflops(*a, stored->plan, x);
    std::printf("refined plan:      %s  (%.2f GFLOP/s, rev %llu)\n",
                stored->plan.to_string().c_str(), refined_gf,
                static_cast<unsigned long long>(stored->plan.revision));
    print_format_provenance(stored->plan);
    std::printf("recovery: %.0f%% of oracle (mispredicted start was "
                "%.0f%%)\n",
                100.0 * refined_gf / oracle_gf, 100.0 * mis_gf / oracle_gf);
  } else {
    std::printf("refined plan: store has no entry for this fingerprint\n");
  }

  // Warm-restart demo: a fresh service over the same store must rebuild
  // from the stored plan (warm hit), never re-run the planning pass.
  {
    prof::RunProfile rprofile;
    serve::ServiceOptions ropts;
    ropts.workers = 1;
    ropts.profile = &rprofile;
    adapt::PlanStore rstore(store_path);
    ropts.plan_store = &rstore;
    serve::SpmvService<float> restarted(mis, ropts);
    (void)restarted.run(a, x);
    restarted.shutdown();
    std::printf("warm restart: %llu warm hit(s), %llu planning pass(es)\n",
                static_cast<unsigned long long>(
                    rprofile.serve.cache_warm_hits),
                static_cast<unsigned long long>(
                    rprofile.serve.planning_passes));
  }

  const std::string profile_path = cli.get("profile");
  if (!profile_path.empty()) {
    prof::write_profile_file(profile_path, profile);
    std::printf("adapt profile written to %s\n", profile_path.c_str());
  }
  if (temp_store) {
    std::remove(store_path.c_str());
  } else {
    std::printf("plan store kept at %s\n", store_path.c_str());
  }
  return 0;
}

// Inspect or compact a persistent plan store without starting a service.
int cmd_plan_store(const util::Cli& cli) {
  const auto& pos = cli.positional();
  if (pos.empty() || (pos[0] != "ls" && pos[0] != "gc")) {
    std::fprintf(stderr,
                 "plan-store: expected ls|gc --store store.json\n");
    return 2;
  }
  const std::string path = cli.get("store");
  if (path.empty()) {
    std::fprintf(stderr, "plan-store: --store store.json required\n");
    return 2;
  }
  adapt::PlanStore store(path, adapt::PlanStore::device_config_string(),
                         cli.get("model-version", "default"));
  (void)store.load();
  const auto st = store.stats();
  std::printf("store %s (device \"%s\", model \"%s\")\n", path.c_str(),
              store.device_config().c_str(), store.model_version().c_str());
  std::printf("loaded %llu; skipped: %llu schema, %llu device, %llu model, "
              "%llu malformed\n",
              static_cast<unsigned long long>(st.loaded),
              static_cast<unsigned long long>(st.skipped_schema),
              static_cast<unsigned long long>(st.skipped_device),
              static_cast<unsigned long long>(st.skipped_model),
              static_cast<unsigned long long>(st.skipped_malformed));
  if (pos[0] == "gc") {
    const std::size_t dropped = store.gc();
    std::size_t expired = 0;
    const double ttl_hours = cli.get_double("ttl-hours", 0.0);
    if (ttl_hours > 0.0)
      expired = store.gc_expired(
          static_cast<std::int64_t>(ttl_hours * 3600.0 * 1000.0));
    store.flush();
    std::printf("dropped %zu foreign entr%s, expired %zu stale; rewrote %s\n",
                dropped, dropped == 1 ? "y" : "ies", expired, path.c_str());
    return 0;
  }
  auto entries = store.entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& l, const auto& r) {
              return std::tie(l.first.rows, l.first.nnz, l.first.row_hash) <
                     std::tie(r.first.rows, r.first.nnz, r.first.row_hash);
            });
  for (const auto& [key, sp] : entries) {
    // Tuned-U provenance: "U<-U0" marks a granularity the online tuner
    // promoted away from the predictor's original choice U0.
    std::string tuned_u = "-";
    if (sp.plan.unit_tuned)
      tuned_u = std::to_string(sp.plan.unit) + "<-" +
                std::to_string(sp.plan.predicted_unit);
    // Sharded-plan provenance: which slice of which parent matrix this
    // plan was tuned for (spmv::shard).
    std::string shard_col = "-";
    if (sp.plan.shard_index >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%d/%d of %016llx",
                    sp.plan.shard_index, sp.plan.shard_count,
                    static_cast<unsigned long long>(sp.plan.shard_parent));
      shard_col = buf;
    }
    // Solver-loop provenance: the serving block width an IterativeSession
    // stamped when it promoted/flushed this plan (spmv::iter).
    std::string spmm_col = "-";
    if (sp.plan.spmm_width > 0)
      spmm_col = "w" + std::to_string(sp.plan.spmm_width);
    std::printf("  %8lld x %-8lld %10lld nnz  hash 0x%016llx  rev %-3llu "
                "tuned-U %-12s shard %-22s spmm %-4s %6.2f GF  %4llu "
                "trials  %s\n",
                static_cast<long long>(key.rows),
                static_cast<long long>(key.cols),
                static_cast<long long>(key.nnz),
                static_cast<unsigned long long>(key.row_hash),
                static_cast<unsigned long long>(sp.plan.revision),
                tuned_u.c_str(), shard_col.c_str(), spmm_col.c_str(),
                sp.gflops, static_cast<unsigned long long>(sp.trials),
                sp.plan.to_string().c_str());
  }
  return 0;
}

// The CI perf gate: diff two RunProfile artifacts. Exit codes are a
// three-way contract: 1 = a metric regressed past the threshold, 2 = the
// profiles no longer speak the same schema (baseline sections missing from
// current — renamed bins/kernels, dropped histograms), 0 = clean. Keeping
// the two failure modes distinct stops a renamed metric from silently
// passing as "nothing regressed".
int cmd_compare_profiles(const util::Cli& cli) {
  const auto& pos = cli.positional();
  if (pos.size() != 2) {
    std::fprintf(stderr,
                 "compare-profiles: expected baseline.json current.json\n");
    return 2;
  }
  const double threshold = cli.get_double("threshold", 1.15);
  const auto baseline = prof::read_profile_file(pos[0]);
  const auto current = prof::read_profile_file(pos[1]);
  const auto result = prof::compare_profiles(baseline, current, threshold);

  if (!result.metrics.empty()) {
    std::printf("%-28s %12s %12s %8s\n", "metric", "baseline[ms]",
                "current[ms]", "ratio");
    for (const auto& m : result.metrics) {
      std::printf("%-28s %12.4f %12.4f %7.2fx%s\n", m.name.c_str(),
                  1e3 * m.baseline, 1e3 * m.current, m.ratio,
                  m.regressed ? "  REGRESSED" : "");
    }
  } else {
    std::printf("no comparable metrics between %s and %s\n", pos[0].c_str(),
                pos[1].c_str());
  }
  if (result.schema_mismatch()) {
    std::printf("\nSCHEMA MISMATCH: baseline metric section(s) missing from "
                "current:\n");
    for (const auto& name : result.missing)
      std::printf("  %s\n", name.c_str());
    std::printf("(exit 2: re-baseline or fix the rename — this is not a "
                "perf verdict)\n");
    return 2;
  }
  if (result.regressed()) {
    std::printf("\nFAIL: regression past %.2fx threshold\n", threshold);
    return 1;
  }
  std::printf("\nOK: no metric regressed past %.2fx threshold\n", threshold);
  return 0;
}

// Perf trajectory: the regression gate's time axis. `append` folds one
// BENCH_*.json snapshot into the committed history, `check` gates the
// newest entry against the rolling window (exit 1 regression, 2 schema
// drift), `render` writes the sparkline dashboard.
int cmd_perf_trajectory(const util::Cli& cli) {
  const auto& pos = cli.positional();
  if (pos.empty() ||
      (pos[0] != "append" && pos[0] != "check" && pos[0] != "render")) {
    std::fprintf(stderr,
                 "perf-trajectory: expected append|check|render "
                 "--file trajectory.json\n");
    return 2;
  }
  const std::string file = cli.get("file");
  if (file.empty()) {
    std::fprintf(stderr, "perf-trajectory: --file trajectory.json required\n");
    return 2;
  }
  prof::Trajectory traj = prof::Trajectory::load_file(file);

  if (pos[0] == "append") {
    const std::string bench_path = cli.get("bench");
    if (bench_path.empty()) {
      std::fprintf(stderr, "perf-trajectory append: --bench BENCH.json "
                           "required\n");
      return 2;
    }
    std::ifstream in(bench_path);
    if (!in) throw std::runtime_error("cannot read " + bench_path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto max_entries =
        static_cast<std::size_t>(cli.get_int("max-entries", 200));
    traj.append(prof::Json::parse(text.str()), cli.get("label", "unlabeled"),
                max_entries);
    traj.save_file(file);
    std::printf("appended %s as entry %llu (%zu total) to %s\n",
                bench_path.c_str(),
                static_cast<unsigned long long>(traj.entries().back().seq),
                traj.entries().size(), file.c_str());
    return 0;
  }

  if (pos[0] == "check") {
    const auto window = static_cast<std::size_t>(cli.get_int("window", 5));
    const double threshold = cli.get_double("threshold", 1.25);
    // --learned derives each metric's gate from its own window noise
    // (mean + 3 sigma, floored at --threshold) instead of one fixed ratio.
    const bool learned = cli.get_bool("learned", false);
    const auto check = traj.check(window, threshold, learned);
    if (check.metrics.empty()) {
      std::printf("trajectory %s: %zu entr%s — not enough history to gate\n",
                  file.c_str(), traj.entries().size(),
                  traj.entries().size() == 1 ? "y" : "ies");
      return 0;
    }
    std::printf("%-36s %12s %12s %8s %8s\n", "metric", "head", "window",
                "ratio", "gate");
    for (const auto& m : check.metrics) {
      std::printf("%-36s %12.6g %12.6g %7.2fx %7.2fx%s\n", m.name.c_str(),
                  m.head, m.window, m.ratio, m.threshold,
                  m.regressed ? "  REGRESSED" : "");
    }
    if (!check.missing.empty()) {
      std::printf("\nSCHEMA DRIFT: head entry lost metric(s):\n");
      for (const auto& name : check.missing)
        std::printf("  %s\n", name.c_str());
      return 2;
    }
    const char* gate_kind = learned ? "learned gate (floor" : "gate (fixed";
    if (check.regressed()) {
      std::printf("\nFAIL: head regressed past the %s %.2fx) vs the "
                  "%zu-entry window\n",
                  gate_kind, threshold, window);
      return 1;
    }
    std::printf("\nOK: head within the %s %.2fx) of the %zu-entry window\n",
                gate_kind, threshold, window);
    return 0;
  }

  // render
  const auto window = static_cast<std::size_t>(cli.get_int("window", 20));
  const std::string md = traj.render_markdown(window);
  const std::string out_path = cli.get("out");
  if (out_path.empty()) {
    std::printf("%s", md.c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write " + out_path);
    out << md;
    std::printf("dashboard written to %s (%zu entries)\n", out_path.c_str(),
                traj.entries().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    if (cmd == "info") return cmd_info(cli);
    if (cmd == "tune") return cmd_tune(cli);
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "train") return cmd_train(cli);
    if (cmd == "gen") return cmd_gen(cli);
    if (cmd == "serve-bench") return cmd_serve_bench(cli);
    if (cmd == "adapt-bench") return cmd_adapt_bench(cli);
    if (cmd == "plan-store") return cmd_plan_store(cli);
    if (cmd == "compare-profiles") return cmd_compare_profiles(cli);
    if (cmd == "perf-trajectory") return cmd_perf_trajectory(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spmv_tool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
